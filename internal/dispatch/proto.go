// Package dispatch distributes a sweep's cell grid across worker
// processes: a coordinator owns the grid (and its checkpoint) and deals
// cells to workers over a length-prefixed JSONL protocol on TCP or unix
// sockets; workers pull cells, run them, and stream back one result per
// cell. Distribution is pure scheduling — which process ran a cell never
// appears in its result, so the merged output is byte-identical to a
// single-process run for any worker count, any steal schedule, and any
// mid-run worker death.
//
// Work placement is work-stealing over shards: each worker owns a deque
// of contiguous cell indices, leases one cell at a time from its head,
// and — when its own shard runs dry — steals half the *tail* of the
// largest remaining shard. A worker that disconnects or stops
// heartbeating has its leased cells revoked and re-dealt (each
// revocation consumes one attempt of the cell's lease budget, mirroring
// the runner's retry policy); a cell that exhausts the budget settles as
// a quarantined failure carrying every attempt's error.
package dispatch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProtoVersion is the wire-protocol version carried in every hello
// frame; a coordinator refuses workers speaking any other version.
// Version 2 added Hello.Token (shared-secret auth) and Job.LeaseTimeout
// (so a worker can reject a heartbeat interval the coordinator would
// reap).
const ProtoVersion = 2

// MaxFrame bounds one frame's body (length prefix excluded). A frame
// carries at most one job spec or one row, so anything near this size
// is corruption, not data.
const MaxFrame = 1 << 22

// FrameType names one protocol message.
type FrameType string

// Protocol frames. The conversation is worker-driven: hello/job is the
// handshake, then the worker loops want -> (lease | drain) -> result*.
const (
	// FrameHello is the worker's first frame: its name and protocol
	// version.
	FrameHello FrameType = "hello"
	// FrameJob is the coordinator's reply to hello: the opaque job spec
	// every cell is run against, and the grid size.
	FrameJob FrameType = "job"
	// FrameWant is the worker asking for work.
	FrameWant FrameType = "want"
	// FrameLease grants cells to the asking worker.
	FrameLease FrameType = "lease"
	// FrameResult reports one cell's outcome (payload or error).
	FrameResult FrameType = "result"
	// FrameHeartbeat is the worker's liveness beacon; it flows even
	// while a cell is computing.
	FrameHeartbeat FrameType = "heartbeat"
	// FrameDrain tells the worker there is no more work, ever: exit.
	FrameDrain FrameType = "drain"
	// FrameFail reports a fatal peer-level error (bad handshake, job
	// the worker cannot initialize) before closing the connection.
	FrameFail FrameType = "fail"
)

// Hello is the worker handshake payload.
type Hello struct {
	// Worker names the worker in logs and lease bookkeeping.
	Worker string
	// Proto is the sender's ProtoVersion.
	Proto int
	// Token is the shared-secret credential for coordinators that
	// require one (Options.Token); empty when the network is trusted.
	Token string `json:",omitempty"`
}

// Job is the coordinator's handshake reply.
type Job struct {
	// Spec is the opaque job description (for sweeps: the axes,
	// fingerprint, harness plan, and per-attempt deadline).
	Spec json.RawMessage
	// Cells is the grid size; leases stay in [0, Cells).
	Cells int
	// LeaseTimeout is the coordinator's silence budget: a worker whose
	// heartbeat interval is not comfortably under it would be reaped
	// mid-cell, so it must fail fast at handshake instead of attaching.
	// Zero when the coordinator predates version 2.
	LeaseTimeout time.Duration `json:",omitempty"`
}

// Lease grants cells to a worker.
type Lease struct {
	Cells []int
}

// Result is one cell's outcome: exactly one of Payload (success) or
// Err (failure) is set.
type Result struct {
	Cell    int
	Payload json.RawMessage `json:",omitempty"`
	Err     string          `json:",omitempty"`
}

// Fail is a fatal peer-level error.
type Fail struct {
	Reason string
}

// Frame is one protocol message: a type tag plus exactly the payload
// that type requires (none for want/heartbeat/drain).
type Frame struct {
	Type   FrameType
	Hello  *Hello  `json:",omitempty"`
	Job    *Job    `json:",omitempty"`
	Lease  *Lease  `json:",omitempty"`
	Result *Result `json:",omitempty"`
	Fail   *Fail   `json:",omitempty"`
}

// WireError is a structured protocol-decode failure: where in the input
// the frame went wrong and why. The codec returns it for every
// malformed input instead of panicking — the property FuzzProtocolRoundTrip
// hammers on.
type WireError struct {
	// Offset is the byte offset (within the data handed to the decoder)
	// where the problem was detected.
	Offset int
	// Reason describes the violation.
	Reason string
	// Err holds an underlying cause (e.g. the JSON error), when any.
	Err error
}

func (e *WireError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("dispatch: wire error at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("dispatch: wire error at byte %d: %s", e.Offset, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *WireError) Unwrap() error { return e.Err }

// Validate checks the frame's type/payload contract: a known type,
// exactly the payload that type requires, and payload invariants (a
// result is a payload xor an error, a lease is non-empty, ...).
func (f Frame) Validate() error {
	set := 0
	for _, p := range []bool{f.Hello != nil, f.Job != nil, f.Lease != nil, f.Result != nil, f.Fail != nil} {
		if p {
			set++
		}
	}
	need := func(ok bool, payload string) error {
		if !ok || set != 1 {
			return fmt.Errorf("frame %q must carry exactly its %s payload", f.Type, payload)
		}
		return nil
	}
	switch f.Type {
	case FrameHello:
		if err := need(f.Hello != nil, "hello"); err != nil {
			return err
		}
		if f.Hello.Worker == "" {
			return fmt.Errorf("hello frame names no worker")
		}
	case FrameJob:
		if err := need(f.Job != nil, "job"); err != nil {
			return err
		}
		if f.Job.Cells < 0 {
			return fmt.Errorf("job frame with negative cell count %d", f.Job.Cells)
		}
		if f.Job.LeaseTimeout < 0 {
			return fmt.Errorf("job frame with negative lease timeout %v", f.Job.LeaseTimeout)
		}
		if len(f.Job.Spec) > 0 && !json.Valid(f.Job.Spec) {
			return fmt.Errorf("job frame spec is not valid JSON")
		}
	case FrameLease:
		if err := need(f.Lease != nil, "lease"); err != nil {
			return err
		}
		if len(f.Lease.Cells) == 0 {
			return fmt.Errorf("lease frame grants no cells")
		}
		for _, c := range f.Lease.Cells {
			if c < 0 {
				return fmt.Errorf("lease frame grants negative cell %d", c)
			}
		}
	case FrameResult:
		if err := need(f.Result != nil, "result"); err != nil {
			return err
		}
		if f.Result.Cell < 0 {
			return fmt.Errorf("result frame for negative cell %d", f.Result.Cell)
		}
		if (len(f.Result.Payload) > 0) == (f.Result.Err != "") {
			return fmt.Errorf("result frame must carry exactly one of payload and error")
		}
		if len(f.Result.Payload) > 0 && !json.Valid(f.Result.Payload) {
			return fmt.Errorf("result frame payload is not valid JSON")
		}
	case FrameFail:
		if err := need(f.Fail != nil, "fail"); err != nil {
			return err
		}
		if f.Fail.Reason == "" {
			return fmt.Errorf("fail frame gives no reason")
		}
	case FrameWant, FrameHeartbeat, FrameDrain:
		if set != 0 {
			return fmt.Errorf("frame %q takes no payload", f.Type)
		}
	default:
		return fmt.Errorf("unknown frame type %q", f.Type)
	}
	return nil
}

// EncodeFrame renders the frame in wire form: a 4-byte big-endian body
// length, then the body — one JSON document terminated by '\n' (the
// JSONL discipline: strip the prefixes and a capture of the stream is
// line-per-frame greppable).
func EncodeFrame(f Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("dispatch: encode: %w", err)
	}
	body, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encode: %w", err)
	}
	body = append(body, '\n')
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("dispatch: encode: frame body %d bytes exceeds the %d limit", len(body), MaxFrame)
	}
	out := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	return append(out, body...), nil
}

// DecodeFrame decodes one frame from the head of data and returns it
// with the number of bytes consumed. Every malformed input — truncated
// prefix or body, oversized or zero length, a body that is not one
// newline-terminated JSON document, an unknown type, a type/payload
// mismatch — returns a *WireError; the decoder never panics.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) < 4 {
		return Frame{}, 0, &WireError{Offset: 0, Reason: fmt.Sprintf("truncated length prefix (%d of 4 bytes)", len(data))}
	}
	n := binary.BigEndian.Uint32(data)
	if n == 0 {
		return Frame{}, 0, &WireError{Offset: 0, Reason: "zero-length frame"}
	}
	if n > MaxFrame {
		return Frame{}, 0, &WireError{Offset: 0, Reason: fmt.Sprintf("frame length %d exceeds the %d limit", n, MaxFrame)}
	}
	if uint32(len(data)-4) < n {
		return Frame{}, 0, &WireError{Offset: 4, Reason: fmt.Sprintf("truncated frame body (%d of %d bytes)", len(data)-4, n)}
	}
	f, err := decodeBody(data[4 : 4+n])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, 4 + int(n), nil
}

// decodeBody parses and validates one frame body (offsets in the
// returned WireError are body-relative plus the 4-byte prefix).
func decodeBody(body []byte) (Frame, error) {
	if body[len(body)-1] != '\n' {
		return Frame{}, &WireError{Offset: 4 + len(body) - 1, Reason: "frame body not newline-terminated"}
	}
	doc := body[:len(body)-1]
	if i := bytes.IndexByte(doc, '\n'); i >= 0 {
		// JSON string escapes mean a canonical frame never holds a raw
		// newline; an embedded one breaks the JSONL property.
		return Frame{}, &WireError{Offset: 4 + i, Reason: "embedded newline inside frame body"}
	}
	var f Frame
	if err := json.Unmarshal(doc, &f); err != nil {
		return Frame{}, &WireError{Offset: 4, Reason: "frame body is not valid JSON", Err: err}
	}
	if err := f.Validate(); err != nil {
		return Frame{}, &WireError{Offset: 4, Reason: err.Error()}
	}
	return f, nil
}

// WriteFrame writes one frame to w in wire form.
func WriteFrame(w io.Writer, f Frame) error {
	data, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads one frame from r, blocking until a full frame (or an
// error) arrives. Decode failures are *WireError; transport failures
// (EOF, closed connection) pass through untouched so callers can
// distinguish a dead peer from a corrupt one.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return Frame{}, &WireError{Offset: 0, Reason: "zero-length frame"}
	}
	if n > MaxFrame {
		return Frame{}, &WireError{Offset: 0, Reason: fmt.Sprintf("frame length %d exceeds the %d limit", n, MaxFrame)}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return decodeBody(body)
}
