package dispatch

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// This file is the coordinator: the single owner of a distributed run's
// truth. All scheduling state — shards, leases, attempt budgets, settled
// results — lives in one goroutine (the Run loop); connection readers
// only ferry frames into its event channel, so there is no locking and
// no order-dependence beyond the deterministic cell results themselves.
//
// Wall-clock time is legitimate here for the same reason it is in
// runner.Policy: lease timeouts and heartbeats police *host* processes
// that can crash or hang, never simulated time, which lives inside each
// worker's private machines.

// DisconnectErr is the attempt error recorded when a worker holding a
// lease dies (connection lost or heartbeat silence). It is a fixed
// string — worker names and timings must not leak into result rows, or
// quarantined rows would differ run to run.
const DisconnectErr = "worker disconnected mid-lease"

// Options configures a Coordinator. The zero value is usable: a 10s
// lease timeout and a single attempt per cell.
type Options struct {
	// LeaseTimeout is how long a worker may stay silent (no result, no
	// heartbeat) before it is declared dead and its leases revoke;
	// <= 0 selects 10s.
	LeaseTimeout time.Duration
	// MaxLeases is each cell's attempt budget: failed results and
	// revoked leases both consume one; a cell that exhausts it settles
	// as a failure. <= 0 selects 1.
	MaxLeases int
	// OnSettled, when non-nil, is called from the coordinator loop as
	// each cell settles — in completion order, like the runner's onDone —
	// so a caller can checkpoint incrementally.
	OnSettled func(cell int, s Settled)
	// Token, when non-empty, is the shared secret every worker must
	// present in its hello frame; a missing or wrong token is refused
	// (constant-time compare) before any job details are revealed. Use
	// it whenever the listener faces an untrusted network.
	Token string
	// Revive is the per-cell budget of lease revocations (worker death,
	// heartbeat silence) absorbed *without* consuming the cell's attempt
	// budget or recording an error. It is the supervised-fleet mode: a
	// dead worker respawns, so its cells should re-deal, not march
	// toward quarantine. <= 0 keeps the historic accounting — every
	// revocation consumes one attempt as DisconnectErr.
	Revive int
	// RetryBackoff, when non-nil, paces re-leases: a cell requeued after
	// a failed attempt or a revoked lease only becomes leasable again
	// after RetryBackoff(n), where n counts the cell's requeues starting
	// at 2 for the first (mirroring runner.Policy.Backoff). Nil requeues
	// immediately. Pure scheduling: pacing never appears in results.
	RetryBackoff func(attempt int) time.Duration
	// Log, when non-nil, receives human-readable scheduling events
	// (worker joins, deaths, steals). Results never depend on it.
	Log func(format string, args ...any)
}

// Settled is one cell's final outcome.
type Settled struct {
	// Payload is the worker-computed result; nil when the cell failed.
	Payload json.RawMessage
	// Err is empty on success, otherwise every attempt's error joined
	// with newlines (mirroring errors.Join) — lease-retry diagnostics
	// keep every attempt, not just the last.
	Err string
	// Errs holds the per-attempt errors in attempt order, including the
	// failed attempts behind an eventual success.
	Errs []string
	// Attempts is how many leases the cell consumed.
	Attempts int
}

// Coordinator shards a grid of cells over attached workers.
type Coordinator struct {
	job   json.RawMessage
	cells []int
	opts  Options
}

// NewCoordinator builds a coordinator for the given opaque job spec and
// the cell indices to run (typically 0..N-1 minus checkpointed cells).
func NewCoordinator(job json.RawMessage, cells []int, opts Options) *Coordinator {
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 10 * time.Second
	}
	if opts.MaxLeases <= 0 {
		opts.MaxLeases = 1
	}
	return &Coordinator{job: job, cells: cells, opts: opts}
}

// shard is one worker's deque of cell indices: leases pop from the
// head, thieves take from the tail. A dead worker's shard stays in the
// shard list, so its remaining cells are stolen like any others.
type shard struct {
	cells []int
}

// workerConn is the coordinator's view of one attached worker.
type workerConn struct {
	conn     net.Conn
	id       string
	shard    *shard
	leased   []int
	lastSeen time.Time
	parked   bool // has an unanswered want
	dead     bool
}

// cellState tracks one unsettled cell's attempt history.
type cellState struct {
	errs     []string
	attempts int
	revives  int // revocations absorbed under the Revive budget
	requeues int // total requeues, for the backoff schedule
}

// cooled is one requeued cell waiting out its retry backoff before it
// becomes leasable again.
type cooled struct {
	cell  int
	home  *shard
	ready time.Time
}

// connEvent is what reader goroutines ferry to the Run loop.
type connEvent struct {
	c   *workerConn
	f   Frame
	err error // transport/protocol failure; the connection is dead
}

// Run accepts workers on ln and drives the grid to completion: every
// cell settles (success, or failure after MaxLeases attempts) or ctx is
// cancelled. It returns the settled cells keyed by index — on
// cancellation the map holds whatever settled in time, alongside ctx's
// error. The listener is closed on return.
func (co *Coordinator) Run(ctx context.Context, ln net.Listener) (map[int]Settled, error) {
	settled := make(map[int]Settled, len(co.cells))
	if len(co.cells) == 0 {
		ln.Close()
		return settled, nil
	}

	events := make(chan connEvent, 64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	defer func() {
		close(done)
		ln.Close()
		wg.Wait()
	}()

	// Accept loop: one reader goroutine per connection. Readers never
	// touch coordinator state — they forward frames and die with their
	// connection (or when the run ends).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wc := &workerConn{conn: conn}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					f, err := ReadFrame(br)
					select {
					case events <- connEvent{c: wc, f: f, err: err}:
					case <-done:
						return
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	st := &coordState{
		co:      co,
		settled: settled,
		states:  make(map[int]*cellState),
		workers: make(map[*workerConn]bool),
	}
	// Seed one shard holding the whole grid; the first worker adopts
	// work by stealing from it like everyone else.
	seed := &shard{cells: append([]int(nil), co.cells...)}
	st.shards = append(st.shards, seed)

	sweep := co.opts.LeaseTimeout / 4
	if sweep < 10*time.Millisecond {
		sweep = 10 * time.Millisecond
	}
	ticker := time.NewTicker(sweep) //metalint:allow wallclock lease timeouts police host worker processes, not simulated time
	defer ticker.Stop()

	for len(st.settled) < len(co.cells) {
		// Arm a timer for the next cooling cell, if any, so ms-scale
		// retry backoffs release promptly instead of waiting for the
		// (lease-timeout-scale) reaper tick.
		var coolCh <-chan time.Time
		var coolTimer *time.Timer
		if d, ok := st.nextCool(); ok {
			if d <= 0 {
				st.releaseCooled()
				continue
			}
			coolTimer = time.NewTimer(d) //metalint:allow wallclock retry-backoff pacing of host re-leases, not simulated time
			coolCh = coolTimer.C
		}
		select {
		case <-ctx.Done():
			if coolTimer != nil {
				coolTimer.Stop()
			}
			// A cancelled run may still settle: the all-local-workers-
			// exited cancellation races the delivery of those workers'
			// own disconnect events, and handling them is what
			// quarantines the revoked cells. Drain events for a bounded
			// grace window before giving up, so a grid whose fate is
			// already decided reports it instead of "context canceled".
			grace := time.NewTimer(time.Second) //metalint:allow wallclock grace window for host worker connection teardown
			for len(st.settled) < len(co.cells) {
				select {
				case ev := <-events:
					st.handle(ev)
				case <-grace.C:
					st.shutdown()
					return settled, ctx.Err()
				}
			}
			grace.Stop()
			st.shutdown()
			return settled, nil
		case ev := <-events:
			st.handle(ev)
		case <-ticker.C:
			st.reapSilent()
			st.releaseCooled()
		case <-coolCh:
			st.releaseCooled()
		}
		if coolTimer != nil {
			coolTimer.Stop()
		}
	}
	st.shutdown()
	return settled, nil
}

// coordState is the Run loop's private scheduling state.
type coordState struct {
	co      *Coordinator
	shards  []*shard
	settled map[int]Settled
	states  map[int]*cellState
	workers map[*workerConn]bool
	parked  []*workerConn
	cooling []cooled
}

func (st *coordState) logf(format string, args ...any) {
	if st.co.opts.Log != nil {
		st.co.opts.Log(format, args...)
	}
}

// handle dispatches one connection event.
func (st *coordState) handle(ev connEvent) {
	if ev.err != nil {
		st.dropWorker(ev.c, "connection lost")
		return
	}
	ev.c.lastSeen = time.Now() //metalint:allow wallclock liveness bookkeeping for host worker processes
	switch ev.f.Type {
	case FrameHello:
		if ev.f.Hello.Proto != ProtoVersion {
			st.logf("dispatch: refusing worker %s: protocol %d, want %d", ev.f.Hello.Worker, ev.f.Hello.Proto, ProtoVersion)
			st.send(ev.c, Frame{Type: FrameFail, Fail: &Fail{
				Reason: fmt.Sprintf("protocol version %d, coordinator speaks %d", ev.f.Hello.Proto, ProtoVersion)}})
			ev.c.conn.Close()
			return
		}
		if tok := st.co.opts.Token; tok != "" &&
			subtle.ConstantTimeCompare([]byte(ev.f.Hello.Token), []byte(tok)) != 1 {
			st.logf("dispatch: refusing worker %s: bad or missing auth token", ev.f.Hello.Worker)
			st.send(ev.c, Frame{Type: FrameFail, Fail: &Fail{
				Reason: "authentication failed: bad or missing token"}})
			ev.c.conn.Close()
			return
		}
		ev.c.id = ev.f.Hello.Worker
		st.workers[ev.c] = true
		st.send(ev.c, Frame{Type: FrameJob, Job: &Job{
			Spec: st.co.job, Cells: len(st.co.cells), LeaseTimeout: st.co.opts.LeaseTimeout}})
	case FrameWant:
		if !st.known(ev.c) {
			return
		}
		st.grant(ev.c)
	case FrameResult:
		if !st.known(ev.c) {
			return
		}
		st.result(ev.c, *ev.f.Result)
	case FrameHeartbeat:
		// lastSeen already refreshed above.
	case FrameFail:
		st.logf("dispatch: worker %s failed: %s", ev.c.id, ev.f.Fail.Reason)
		st.dropWorker(ev.c, ev.f.Fail.Reason)
	default:
		// A worker must not send coordinator-only frames.
		st.dropWorker(ev.c, fmt.Sprintf("protocol violation: unexpected %q frame", ev.f.Type))
	}
}

// known filters frames from connections that never completed the
// handshake (or were already dropped).
func (st *coordState) known(wc *workerConn) bool { return st.workers[wc] && !wc.dead }

// send writes one frame to a worker, under a short deadline so a wedged
// peer cannot stall the whole coordinator; a write failure drops the
// worker through the usual revocation path.
func (st *coordState) send(wc *workerConn, f Frame) bool {
	wc.conn.SetWriteDeadline(time.Now().Add(5 * time.Second)) //metalint:allow wallclock write deadline guards against a wedged host process
	if err := WriteFrame(wc.conn, f); err != nil {
		st.dropWorker(wc, "write failed")
		return false
	}
	return true
}

// grant answers a want: lease the next cell from the worker's shard
// (stealing a shard first if it has none), or park the want until
// revocation frees work.
func (st *coordState) grant(wc *workerConn) {
	cell, ok := st.take(wc)
	if !ok {
		if !wc.parked {
			wc.parked = true
			st.parked = append(st.parked, wc)
		}
		return
	}
	wc.leased = append(wc.leased, cell)
	st.send(wc, Frame{Type: FrameLease, Lease: &Lease{Cells: []int{cell}}})
}

// take pops the next cell for the worker: the head of its own shard, or
// — when that is empty — after stealing half the tail of the largest
// remaining shard.
func (st *coordState) take(wc *workerConn) (int, bool) {
	if wc.shard == nil {
		wc.shard = &shard{}
		st.shards = append(st.shards, wc.shard)
	}
	if len(wc.shard.cells) == 0 {
		victim := st.largestShard(wc.shard)
		if victim == nil {
			return 0, false
		}
		k := (len(victim.cells) + 1) / 2
		stolen := victim.cells[len(victim.cells)-k:]
		wc.shard.cells = append(wc.shard.cells, stolen...)
		victim.cells = victim.cells[:len(victim.cells)-k]
		st.logf("dispatch: worker %s stole %d cells", wc.id, k)
	}
	cell := wc.shard.cells[0]
	wc.shard.cells = wc.shard.cells[1:]
	return cell, true
}

// largestShard returns the non-empty shard with the most cells,
// excluding the asker's own; ties break to the earliest-created shard,
// keeping the choice deterministic for a given shard history.
func (st *coordState) largestShard(own *shard) *shard {
	var best *shard
	for _, s := range st.shards {
		if s == own || len(s.cells) == 0 {
			continue
		}
		if best == nil || len(s.cells) > len(best.cells) {
			best = s
		}
	}
	return best
}

// result settles or retries one reported cell.
func (st *coordState) result(wc *workerConn, r Result) {
	// Clear the lease (a late result after revocation has none).
	for i, c := range wc.leased {
		if c == r.Cell {
			wc.leased = append(wc.leased[:i], wc.leased[i+1:]...)
			break
		}
	}
	if _, ok := st.settled[r.Cell]; ok {
		return // duplicate (cell re-ran elsewhere after a revocation race)
	}
	cs := st.state(r.Cell)
	cs.attempts++
	if r.Err == "" {
		st.settle(r.Cell, Settled{Payload: r.Payload, Errs: cs.errs, Attempts: cs.attempts})
		return
	}
	cs.errs = append(cs.errs, r.Err)
	st.retryOrFail(wc.shard, r.Cell, cs)
}

// retryOrFail requeues a failed cell (paced by the retry backoff, still
// stealable once released) while budget remains, else settles it as a
// failure joining every attempt's error.
func (st *coordState) retryOrFail(home *shard, cell int, cs *cellState) {
	if cs.attempts < st.co.opts.MaxLeases {
		st.requeue(home, cell, cs)
		return
	}
	st.settle(cell, Settled{Err: strings.Join(cs.errs, "\n"), Errs: cs.errs, Attempts: cs.attempts})
}

// requeue makes a cell leasable again — immediately at the head of its
// home shard, or via the cooling queue when a retry backoff is
// configured.
func (st *coordState) requeue(home *shard, cell int, cs *cellState) {
	cs.requeues++
	if home == nil {
		home = st.anyShard()
	}
	if bo := st.co.opts.RetryBackoff; bo != nil {
		// First requeue is attempt 2 of the cell, matching the runner's
		// Policy.Backoff numbering.
		if d := bo(cs.requeues + 1); d > 0 {
			st.cooling = append(st.cooling, cooled{
				cell: cell, home: home,
				ready: time.Now().Add(d), //metalint:allow wallclock retry-backoff pacing of host re-leases, not simulated time
			})
			return
		}
	}
	home.cells = append([]int{cell}, home.cells...)
	st.serveParked()
}

// nextCool reports how long until the earliest cooling cell is ready.
func (st *coordState) nextCool() (time.Duration, bool) {
	if len(st.cooling) == 0 {
		return 0, false
	}
	min := st.cooling[0].ready
	for _, c := range st.cooling[1:] {
		if c.ready.Before(min) {
			min = c.ready
		}
	}
	return time.Until(min), true //metalint:allow wallclock retry-backoff pacing of host re-leases, not simulated time
}

// releaseCooled moves every cooled cell whose backoff elapsed back to
// the head of its home shard and serves parked wants.
func (st *coordState) releaseCooled() {
	if len(st.cooling) == 0 {
		return
	}
	now := time.Now() //metalint:allow wallclock retry-backoff pacing of host re-leases, not simulated time
	kept := st.cooling[:0]
	released := false
	for _, c := range st.cooling {
		if now.Before(c.ready) {
			kept = append(kept, c)
			continue
		}
		if _, ok := st.settled[c.cell]; ok {
			continue // a late duplicate result settled it while cooling
		}
		c.home.cells = append([]int{c.cell}, c.home.cells...)
		released = true
	}
	st.cooling = kept
	if released {
		st.serveParked()
	}
}

// anyShard returns a shard to requeue into when the natural home is
// unknown (every coordinator has at least the seed shard).
func (st *coordState) anyShard() *shard { return st.shards[0] }

func (st *coordState) state(cell int) *cellState {
	cs := st.states[cell]
	if cs == nil {
		cs = &cellState{}
		st.states[cell] = cs
	}
	return cs
}

// settle records a final outcome and notifies the caller.
func (st *coordState) settle(cell int, s Settled) {
	st.settled[cell] = s
	if st.co.opts.OnSettled != nil {
		st.co.opts.OnSettled(cell, s)
	}
}

// dropWorker declares a worker dead: its connection closes, its parked
// want is forgotten, and every cell it held is revoked — each
// revocation consumes one attempt (recorded as DisconnectErr) and the
// cell requeues at the head of the dead worker's shard, where surviving
// workers steal it.
func (st *coordState) dropWorker(wc *workerConn, why string) {
	if wc.dead || !st.workers[wc] {
		wc.conn.Close()
		return
	}
	wc.dead = true
	delete(st.workers, wc)
	wc.conn.Close()
	if wc.parked {
		for i, p := range st.parked {
			if p == wc {
				st.parked = append(st.parked[:i], st.parked[i+1:]...)
				break
			}
		}
		wc.parked = false
	}
	if len(wc.leased) > 0 {
		st.logf("dispatch: worker %s died (%s); revoking %d leased cell(s)", wc.id, why, len(wc.leased))
	}
	for _, cell := range wc.leased {
		if _, ok := st.settled[cell]; ok {
			continue
		}
		cs := st.state(cell)
		if cs.revives < st.co.opts.Revive {
			// Supervised mode: the host died, not the cell. Re-deal
			// without touching the attempt budget — the supervisor will
			// have a replacement worker up shortly.
			cs.revives++
			st.requeue(wc.shard, cell, cs)
			continue
		}
		cs.attempts++
		cs.errs = append(cs.errs, DisconnectErr)
		st.retryOrFail(wc.shard, cell, cs)
	}
	wc.leased = nil
	st.serveParked()
}

// serveParked grants queued wants (FIFO) while work is available.
func (st *coordState) serveParked() {
	for len(st.parked) > 0 {
		wc := st.parked[0]
		cell, ok := st.take(wc)
		if !ok {
			return
		}
		st.parked = st.parked[1:]
		wc.parked = false
		wc.leased = append(wc.leased, cell)
		st.send(wc, Frame{Type: FrameLease, Lease: &Lease{Cells: []int{cell}}})
	}
}

// reapSilent revokes the leases of workers that stopped heartbeating.
func (st *coordState) reapSilent() {
	now := time.Now() //metalint:allow wallclock liveness bookkeeping for host worker processes
	var silent []*workerConn
	for wc := range st.workers { //metalint:allow maporder drop order does not affect any result: revoked cells requeue into per-worker shards
		if now.Sub(wc.lastSeen) > st.co.opts.LeaseTimeout {
			silent = append(silent, wc)
		}
	}
	for _, wc := range silent {
		st.dropWorker(wc, "heartbeat timeout")
	}
}

// shutdown drains every surviving worker and closes the connections.
func (st *coordState) shutdown() {
	for wc := range st.workers { // drain order is invisible: every worker gets the same frame
		wc.conn.SetWriteDeadline(time.Now().Add(time.Second)) //metalint:allow wallclock write deadline guards against a wedged host process
		WriteFrame(wc.conn, Frame{Type: FrameDrain})
		wc.conn.Close()
	}
}
