package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// RunFunc computes one cell and returns its result payload, or the
// error the coordinator should record against this attempt.
type RunFunc func(ctx context.Context, cell int) (json.RawMessage, error)

// Session is an initialized worker-side job: how to run a cell, plus an
// optional fault hook.
type Session struct {
	// Run computes one leased cell.
	Run RunFunc
	// Drop, when non-nil, is consulted before each leased cell: true
	// means "die now" — the worker closes its connection abruptly
	// (the in-process analog of a SIGKILL) so chaos tests can exercise
	// the coordinator's revocation path deterministically.
	Drop func(cell int) bool
}

// Worker attaches to a coordinator, initializes a session from the job
// it is handed, and then pulls and runs cells until drained.
type Worker struct {
	// ID names the worker in the hello handshake and coordinator logs.
	ID string
	// Heartbeat is the beacon interval; <= 0 selects one second. It must
	// stay well under the coordinator's lease timeout; a version-2
	// coordinator advertises that timeout in the job frame and the
	// worker refuses to attach when the interval is not under it.
	Heartbeat time.Duration
	// Token is the shared-secret credential presented in the hello
	// frame; required when the coordinator was given Options.Token.
	Token string
	// Init builds the session from the coordinator's opaque job spec.
	// An error here is reported to the coordinator as a fail frame.
	Init func(job json.RawMessage) (Session, error)
}

// ErrDropped is returned by Worker.Run when the session's Drop hook
// fired: the worker abandoned its connection on purpose.
var ErrDropped = errors.New("dispatch: worker dropped by fault hook")

// Run speaks the worker side of the protocol over conn until the
// coordinator drains it (nil), the context is cancelled, or the
// connection dies. The connection is closed on return.
func (w *Worker) Run(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	hb := w.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}

	// All writes — results, wants, heartbeats — share one mutex so the
	// heartbeat goroutine can beat while a cell computes without
	// interleaving bytes mid-frame.
	var wmu sync.Mutex
	send := func(f Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return WriteFrame(conn, f)
	}

	if err := send(Frame{Type: FrameHello, Hello: &Hello{Worker: w.ID, Proto: ProtoVersion, Token: w.Token}}); err != nil {
		return fmt.Errorf("dispatch: worker hello: %w", err)
	}
	br := bufio.NewReader(conn)
	f, err := ReadFrame(br)
	if err != nil {
		return fmt.Errorf("dispatch: worker handshake: %w", err)
	}
	switch f.Type {
	case FrameJob:
	case FrameFail:
		return fmt.Errorf("dispatch: coordinator refused worker: %s", f.Fail.Reason)
	default:
		return fmt.Errorf("dispatch: worker handshake: unexpected %q frame", f.Type)
	}
	if lt := f.Job.LeaseTimeout; lt > 0 && hb >= lt {
		// Attaching anyway would mean being silently reaped mid-cell the
		// first time a computation outlasts one heartbeat gap.
		reason := fmt.Sprintf("heartbeat interval %v is not under the coordinator's %v lease timeout", hb, lt)
		send(Frame{Type: FrameFail, Fail: &Fail{Reason: reason}})
		return fmt.Errorf("dispatch: worker handshake: %s", reason)
	}
	sess, err := w.Init(f.Job.Spec)
	if err != nil {
		send(Frame{Type: FrameFail, Fail: &Fail{Reason: err.Error()}})
		return fmt.Errorf("dispatch: worker init: %w", err)
	}

	// Heartbeat beacon: keeps the lease alive while a slow cell
	// computes. Stops with the run.
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(hb) //metalint:allow wallclock heartbeats police host process liveness, not simulated time
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				if send(Frame{Type: FrameHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	// Unblock the (blocking) frame reads when the context dies.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	for {
		if err := send(Frame{Type: FrameWant}); err != nil {
			// The coordinator may have drained and closed while this want
			// was in flight (it finished the moment our last result
			// landed). The drain frame, if any, is still readable from the
			// kernel buffer — a clean exit, not a failure.
			if f, rerr := ReadFrame(br); rerr == nil && f.Type == FrameDrain {
				return nil
			} else if errors.Is(rerr, io.EOF) {
				return ctxOr(ctx, nil)
			}
			return ctxOr(ctx, fmt.Errorf("dispatch: worker want: %w", err))
		}
		f, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return ctxOr(ctx, nil) // coordinator finished without a drain frame
			}
			return ctxOr(ctx, fmt.Errorf("dispatch: worker read: %w", err))
		}
		switch f.Type {
		case FrameDrain:
			return nil
		case FrameLease:
			for _, cell := range f.Lease.Cells {
				if sess.Drop != nil && sess.Drop(cell) {
					// Abrupt close, no goodbye: the SIGKILL analog. The
					// coordinator sees a dead connection and revokes.
					conn.Close()
					return ErrDropped
				}
				payload, err := runCell(ctx, sess.Run, cell)
				res := &Result{Cell: cell}
				if err != nil {
					res.Err = err.Error()
				} else {
					res.Payload = payload
				}
				if err := send(Frame{Type: FrameResult, Result: res}); err != nil {
					// Same shutdown race as the want path: the grid can
					// settle (a revoked twin of this cell re-ran elsewhere)
					// while this result is in flight.
					if f, rerr := ReadFrame(br); rerr == nil && f.Type == FrameDrain {
						return nil
					} else if errors.Is(rerr, io.EOF) {
						return ctxOr(ctx, nil)
					}
					return ctxOr(ctx, fmt.Errorf("dispatch: worker result: %w", err))
				}
			}
		default:
			return fmt.Errorf("dispatch: worker: unexpected %q frame", f.Type)
		}
	}
}

// runCell runs one cell with panic containment; a panicking cell
// becomes a normal attempt error instead of killing the worker. The
// message is exactly the "panic: v" the in-process runner records — no
// stack — so a panicking cell settles to the same row bytes under
// -par and -workers.
func runCell(ctx context.Context, run RunFunc, cell int) (payload json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return run(ctx, cell)
}

// ctxOr prefers the context's cancellation over a transport error that
// the cancellation itself provoked (we close the conn to unblock reads).
func ctxOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
