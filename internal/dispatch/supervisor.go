package dispatch

import (
	"context"
	"fmt"
	"time"
)

// Supervisor keeps a fleet of workers alive for the duration of a run.
// Each of Workers slots loops: run Start to completion; a slot whose
// Start returns an error (the worker crashed, was SIGKILLed, or its
// connection flapped) respawns after a deterministic backoff, while a
// slot that returns nil was drained by the coordinator and is done.
// Supervision is pure scheduling — which attempt of which slot computed
// a cell never reaches a result — so a supervised fleet's output is
// byte-identical to any other execution of the same grid.
//
// The supervisor pairs with Options.Revive on the coordinator side:
// Revive absorbs the revocations a dying worker causes, and the
// supervisor guarantees a replacement arrives to pick the cells back
// up.
type Supervisor struct {
	// Workers is the fleet width (number of slots); <= 0 selects 1.
	Workers int
	// Start runs one worker attempt for a slot to completion: typically
	// dial the coordinator (DialRetry) and drive a Worker, or spawn a
	// worker process and wait on it. A nil return means the worker was
	// drained — the slot is done. attempt starts at 1 and counts this
	// slot's spawns.
	Start func(ctx context.Context, slot, attempt int) error
	// Backoff paces respawns: the pause before attempt n of a slot
	// (n = 2 for the first respawn, mirroring runner.Policy.Backoff).
	// Nil respawns immediately.
	Backoff func(attempt int) time.Duration
	// MaxRespawns bounds each slot's total respawns; a slot that
	// exhausts it stops, surfacing its last error from Run. <= 0
	// selects 32.
	MaxRespawns int
	// Log, when non-nil, receives supervision events (deaths and
	// respawns). Results never depend on it.
	Log func(format string, args ...any)
}

// Run supervises the fleet until every slot drains, ctx is cancelled
// (a shutdown, not a failure — returns nil), or a slot exhausts its
// respawn budget. It returns the first budget-exhaustion error, if any.
func (s *Supervisor) Run(ctx context.Context) error {
	n := s.Workers
	if n <= 0 {
		n = 1
	}
	max := s.MaxRespawns
	if max <= 0 {
		max = 32
	}
	errs := make(chan error, n)
	for slot := 0; slot < n; slot++ {
		go func(slot int) {
			errs <- s.slot(ctx, slot, max)
		}(slot)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// slot drives one supervised worker slot to drain or budget exhaustion.
func (s *Supervisor) slot(ctx context.Context, slot, max int) error {
	var last error
	for attempt := 1; attempt <= 1+max; attempt++ {
		if attempt > 1 {
			s.logf("dispatch: worker slot %d died (%v); respawning (attempt %d)", slot, last, attempt)
			if s.Backoff != nil {
				if d := s.Backoff(attempt); d > 0 {
					t := time.NewTimer(d) //metalint:allow wallclock respawn pacing of host worker processes, not simulated time
					select {
					case <-ctx.Done():
						t.Stop()
						return nil
					case <-t.C:
					}
				}
			}
		}
		if ctx.Err() != nil {
			return nil // shutdown, not a slot failure
		}
		err := s.Start(ctx, slot, attempt)
		if err == nil || ctx.Err() != nil {
			return nil
		}
		last = err
	}
	return fmt.Errorf("dispatch: worker slot %d exhausted its %d-respawn budget: %w", slot, max, last)
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}
