// Package analysis is the static-analysis framework behind cmd/metalint:
// it loads every package of the repository with full type information
// (stdlib only — go/parser, go/types, and the source importer; no module
// dependencies) and runs determinism analyzers over them.
//
// The simulator's results are only meaningful if "time" always means
// simulated cycles and every run with one seed is byte-identical. That
// contract cannot be guarded by tests alone — a single stray time.Now or
// an order-dependent range over a map silently perturbs every experiment
// — so it is enforced statically. Each invariant is an Analyzer; the
// Pass abstraction gives analyzers a shared file set, type info,
// diagnostics with file:line:col positions, and allow-directive
// suppression, so follow-on invariants are cheap to add.
//
// # Allow directives
//
// A finding is suppressed by a directive comment on the flagged line or
// on the line directly above it:
//
//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
//
// The reason is free text and encouraged: directives are grep-able
// documentation of every intentional exception to the determinism
// contract.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier used in output and in allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Match restricts the analyzer to packages for which it returns
	// true; nil applies the analyzer to every package.
	Match func(pkgPath string) bool
	// Run performs the analysis on pass.Pkg.
	Run func(pass *Pass)
}

// All lists the registered analyzers in stable output order.
var All = []*Analyzer{
	WallClock,
	GlobalRand,
	MapOrder,
	CycleLeak,
	FloatCycles,
	UncheckedErr,
	SeedPlumbing,
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries the per-(analyzer, package) state handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags      *[]Diagnostic
	suppressed *int
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowedAt(p.Analyzer.Name, position) {
		*p.suppressed++
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by allow directives.
	Suppressed int
}

// Run applies each analyzer to each package it matches and returns the
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Pkg:        pkg,
				diags:      &res.Diagnostics,
				suppressed: &res.Suppressed,
			}
			a.Run(pass)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// Relativize rewrites diagnostic file names relative to base (when
// possible) for stable, readable output.
func (r *Result) Relativize(base string) {
	for i := range r.Diagnostics {
		d := &r.Diagnostics[i]
		if rel, err := filepath.Rel(base, d.File); err == nil && !strings.HasPrefix(rel, "..") {
			d.File = filepath.ToSlash(rel)
		}
	}
}

// WriteText renders findings one per line in file:line:col form.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (empty array, not null,
// when the tree is clean, so consumers can always index the result).
func (r *Result) WriteJSON(w io.Writer) error {
	diags := r.Diagnostics
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// pathHasSuffixSegment reports whether the import path is, or ends with,
// the given slash-separated segment sequence (e.g. "internal/sim"
// matches both "internal/sim" and "metaleak/internal/sim" but not
// "internal/simulator").
func pathHasSuffixSegment(path, segs string) bool {
	return path == segs || strings.HasSuffix(path, "/"+segs)
}

// matchAnyPkg builds a Match function from package path segments.
func matchAnyPkg(segs ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range segs {
			if pathHasSuffixSegment(path, s) {
				return true
			}
		}
		return false
	}
}
