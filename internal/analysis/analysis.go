// Package analysis is the static-analysis framework behind cmd/metalint:
// it loads every package of the repository with full type information
// (stdlib only — go/parser, go/types, and the source importer; no module
// dependencies) and runs determinism analyzers over them.
//
// The simulator's results are only meaningful if "time" always means
// simulated cycles and every run with one seed is byte-identical. That
// contract cannot be guarded by tests alone — a single stray time.Now or
// an order-dependent range over a map silently perturbs every experiment
// — so it is enforced statically. Each invariant is an Analyzer; the
// Pass abstraction gives analyzers a shared file set, type info,
// diagnostics with file:line:col positions, and allow-directive
// suppression, so follow-on invariants are cheap to add.
//
// # Allow directives
//
// A finding is suppressed by a directive comment on the flagged line or
// on the line directly above it:
//
//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
//
// The reason is free text and encouraged: directives are grep-able
// documentation of every intentional exception to the determinism
// contract.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Per-package analyzers set Run,
// which inspects a single package; whole-program analyzers set
// RunProgram, which sees every loaded package at once (required for
// interprocedural passes like secretflow). Exactly one of the two is
// set.
type Analyzer struct {
	// Name is the identifier used in output and in allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Match restricts the analyzer to packages for which it returns
	// true; nil applies the analyzer to every package. A whole-program
	// analyzer still analyzes every loaded package — Match gates only
	// which packages it may report findings in.
	Match func(pkgPath string) bool
	// Run performs the analysis on pass.Pkg.
	Run func(pass *Pass)
	// RunProgram performs a whole-program analysis over pass.Pkgs.
	RunProgram func(pass *ProgramPass)
}

// All lists the registered analyzers in stable output order.
var All = []*Analyzer{
	WallClock,
	GlobalRand,
	MapOrder,
	CycleLeak,
	FloatCycles,
	UncheckedErr,
	SeedPlumbing,
	SecretFlow,
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries the per-(analyzer, package) state handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags      *[]Diagnostic
	suppressed *int
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowedAt(p.Analyzer.Name, position) {
		*p.suppressed++
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the state handed to a whole-program analyzer's
// RunProgram: every loaded package, plus the reporting plumbing.
type ProgramPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Fset     *token.FileSet

	res *Result
}

// Reportable reports whether findings in pkg are within the analyzer's
// reporting scope (its Match function).
func (p *ProgramPass) Reportable(pkg *Package) bool {
	return p.Analyzer.Match == nil || p.Analyzer.Match(pkg.Path)
}

// Reportf records a finding at pos in pkg unless the package is outside
// the analyzer's reporting scope or an allow directive covers the
// position.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	if !p.Reportable(pkg) {
		return
	}
	position := p.Fset.Position(pos)
	if pkg.allowedAt(p.Analyzer.Name, position) {
		p.res.Suppressed++
		return
	}
	p.res.Diagnostics = append(p.res.Diagnostics, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AddLeak records one declared leak site in the inventory.
func (p *ProgramPass) AddLeak(site LeakSite) {
	p.res.Inventory = append(p.res.Inventory, site)
}

// ChainStep is one hop of a taint chain: the seed declaration, an
// interprocedural hand-off, or the sink itself.
type ChainStep struct {
	Desc string `json:"desc"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// LeakSite is one entry of the leakage inventory: a secret-dependent
// site covered by a //metalint:leaky directive. The set of LeakSites is
// the leakage contract — the only places secrets may influence
// control flow or addresses.
type LeakSite struct {
	File    string      `json:"file"`
	Line    int         `json:"line"`
	Col     int         `json:"col"`
	Kind    string      `json:"kind"`    // branch | loop-bound | index | alloc | spread
	Channel string      `json:"channel"` // from the leaky directive
	Symbol  string      `json:"symbol"`  // the secret(s) reaching the site
	Reason  string      `json:"reason"`  // from the leaky directive
	Chain   []ChainStep `json:"chain"`   // seed-to-sink taint path
}

// Inventory is the machine-readable leakage contract emitted by
// `metalint -inventory` and diffed against the committed golden in CI.
type Inventory struct {
	Version int        `json:"version"`
	Sites   []LeakSite `json:"sites"`
}

// Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by allow directives.
	Suppressed int
	// Inventory lists the declared (leaky-annotated) secret-dependent
	// sites found by whole-program analyzers.
	Inventory []LeakSite
	// Stale warns about directives that did nothing: suppressed no
	// finding, marked no declaration, covered no leak. Gated to the
	// analyzers that actually ran, so partial runs never cry stale.
	Stale []Diagnostic
}

// Run applies each analyzer to each package it matches and returns the
// findings sorted by position. Whole-program analyzers run once over
// the full package set.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Pkg:        pkg,
				diags:      &res.Diagnostics,
				suppressed: &res.Suppressed,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		var fset *token.FileSet
		if len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		a.RunProgram(&ProgramPass{Analyzer: a, Pkgs: pkgs, Fset: fset, res: &res})
	}
	res.Stale = staleDirectives(pkgs, ran)
	sortDiags(res.Diagnostics)
	sortDiags(res.Stale)
	sort.Slice(res.Inventory, func(i, j int) bool {
		a, b := res.Inventory[i], res.Inventory[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Kind < b.Kind
	})
	return res
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Relativize rewrites diagnostic, inventory, and stale-warning file
// names relative to base (when possible) for stable, readable output.
func (r *Result) Relativize(base string) {
	for i := range r.Diagnostics {
		r.Diagnostics[i].File = relativize(base, r.Diagnostics[i].File)
	}
	for i := range r.Stale {
		r.Stale[i].File = relativize(base, r.Stale[i].File)
	}
	for i := range r.Inventory {
		site := &r.Inventory[i]
		site.File = relativize(base, site.File)
		for j := range site.Chain {
			site.Chain[j].File = relativize(base, site.Chain[j].File)
		}
	}
}

// relativize returns file relative to base unless file lies outside
// base. The escape test compares against the ".." path *segment*, not
// the ".." prefix, so a sibling named "..foo" (a legitimate, if odd,
// directory name) still relativizes.
func relativize(base, file string) string {
	rel, err := filepath.Rel(base, file)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteText renders findings one per line in file:line:col form.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteInventory renders the leakage inventory as stable, indented
// JSON (an empty sites array, not null, when nothing is declared
// leaky).
func (r *Result) WriteInventory(w io.Writer) error {
	sites := r.Inventory
	if sites == nil {
		sites = []LeakSite{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Inventory{Version: 1, Sites: sites})
}

// WriteJSON renders findings as a JSON array (empty array, not null,
// when the tree is clean, so consumers can always index the result).
func (r *Result) WriteJSON(w io.Writer) error {
	diags := r.Diagnostics
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// pathHasSuffixSegment reports whether the import path is, or ends with,
// the given slash-separated segment sequence (e.g. "internal/sim"
// matches both "internal/sim" and "metaleak/internal/sim" but not
// "internal/simulator").
func pathHasSuffixSegment(path, segs string) bool {
	return path == segs || strings.HasSuffix(path, "/"+segs)
}

// matchAnyPkg builds a Match function from package path segments.
func matchAnyPkg(segs ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range segs {
			if pathHasSuffixSegment(path, s) {
				return true
			}
		}
		return false
	}
}
