package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package time functions that observe or depend
// on the host's clock. Referencing one from simulator code couples an
// experiment to wall-clock time, which the determinism contract forbids:
// all timing is simulated cycles (arch.Cycles) advanced by the model.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock forbids wall-clock time in simulator code. Operator-facing
// progress output (e.g. cmd/metaleak's per-experiment runtime) is the
// only legitimate use and must be annotated:
//
//	//metalint:allow wallclock progress output only, never in results
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Sleep and friends: all timing in " +
		"the simulator is expressed in simulated cycles (arch.Cycles), never " +
		"wall-clock time",
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(f.Package).Filename
		if isTestFile(filename) {
			// Tests may time themselves (deadlines, t.Deadline
			// plumbing); the contract covers simulation code.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if !wallClockFuncs[obj.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the host clock: simulator timing must be simulated cycles (arch.Cycles); "+
					"annotate operator-facing progress output with //metalint:allow wallclock",
				obj.Name())
			return true
		})
	}
}
