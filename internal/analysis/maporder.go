package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// statefulPkgs are the packages whose calls advance simulator state:
// issuing accesses, moving the cycle clock, mutating caches. Iterating
// a map while calling into them makes the *order* of those state
// transitions nondeterministic, which changes cache contents, latencies,
// and ultimately experiment results between runs.
var statefulPkgs = []string{"internal/sim", "internal/core"}

// MapOrder flags `for … range` over a map whose body has order-sensitive
// effects: appending to a slice declared outside the loop (element order
// then depends on iteration order) or calling into the simulator
// (internal/sim, internal/core). Two escapes exist: sort — an appended
// slice that is subsequently passed to sort/slices in the same function
// is considered canonicalized — and the allow directive for loops whose
// effects are genuinely commutative:
//
//	//metalint:allow maporder summing is commutative
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range over a map whose body appends to an outer slice or " +
		"calls into internal/sim or internal/core: map iteration order is " +
		"randomized per run, so such loops make experiments irreproducible " +
		"unless the keys are sorted first",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncMapRanges(pass, fd.Body, fd.Body)
			}
		}
	}
}

// checkFuncMapRanges walks fn (a function body) finding map ranges. For
// each, the sort-escape is searched in scope — the innermost function
// literal body containing the loop, falling back to fn.
func checkFuncMapRanges(pass *Pass, fn *ast.BlockStmt, scope *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != nil {
				checkFuncMapRanges(pass, n.Body, n.Body)
			}
			return false
		case *ast.RangeStmt:
			t := pass.Pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(pass, n, scope)
		}
		return true
	})
}

// checkMapRange reports the first order-sensitive effect in the loop
// body, if any.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, scope *ast.BlockStmt) {
	var offense string
	var offensePos = rs.For
	found := false

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Pkg.Info, call) || i >= len(n.Lhs) {
					continue
				}
				target := unparen(n.Lhs[i])
				if declaredWithin(pass.Pkg.Info, target, rs) {
					continue
				}
				if sortedAfter(pass.Pkg.Info, scope, rs, target) {
					continue
				}
				offense = fmt.Sprintf("appends to %s in map-iteration order", types.ExprString(target))
				found = true
				return false
			}
		case *ast.CallExpr:
			obj := callee(pass.Pkg.Info, n)
			if fn, ok := obj.(*types.Func); ok && objFromPackage(fn, statefulPkgs...) {
				offense = fmt.Sprintf("calls %s, which advances simulator state, in map-iteration order", fn.FullName())
				found = true
				return false
			}
		}
		return true
	})
	if !found {
		return
	}
	pass.Reportf(offensePos,
		"range over map %s is order-nondeterministic: %s; sort the keys first or annotate //metalint:allow maporder",
		types.ExprString(rs.X), offense)
}

// isBuiltinAppend reports whether the call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredWithin reports whether the expression names a variable whose
// declaration lies inside the range statement (loop-local accumulation
// is order-safe — it dies with the iteration).
func declaredWithin(info *types.Info, target ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false // selector/index targets are outer state
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End()
}

// sortedAfter reports whether, after the range loop, the enclosing
// function passes the append target to a sort/slices function — the
// collect-then-sort idiom that canonicalizes iteration order.
func sortedAfter(info *types.Info, scope *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		obj := callee(info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(unparen(arg)) == want {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
