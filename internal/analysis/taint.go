package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the interprocedural taint engine behind the secretflow
// analyzer. It is a summary-based dataflow pass, not an AST pattern
// match:
//
//  1. Every function and function literal in the loaded program becomes
//     a funcInfo with a symbolic environment mapping its locals to
//     taint values.
//  2. A coarse function-value flow pass resolves dynamic calls through
//     variables and struct fields (the mpi.Hooks pattern) and method
//     expressions, iterating because resolving a call can reveal new
//     function-value flows.
//  3. Per-function summaries are computed to a global fixpoint: for
//     each result and each by-reference parameter, the set of
//     parameters, shared objects (package vars and captured locals),
//     and secret seeds it may derive from. Call results are
//     instantiated per call site with that site's argument taints, so
//     a helper shared by secret and non-secret callers does not smear
//     taint across them.
//  4. A final recording pass collects sinks (branch and switch
//     conditions, loop bounds, index expressions, make sizes, variadic
//     spreads), call-argument hand-offs, and shared-object writes with
//     their symbolic dependencies, and a small concrete fixpoint
//     propagates seeds through those records, tracking provenance so
//     each finding carries its seed-to-sink chain.
//
// Soundness limits (deliberate, documented in DESIGN.md §10): only
// explicit data flows are tracked (no implicit flow through control
// dependence), interface method calls and calls into the standard
// library propagate argument taint to results but have no modelled
// side effects, channels and slice-expression bounds are not tracked,
// and package-level variable initializers are not analyzed.

// maxSeeds caps the seed bitset; later seeds share the last bit
// (conservative merging, never silent dropping).
const maxSeeds = 64

// symval is the symbolic taint of a value inside one function: which
// of the function's parameters, which secret seeds, and which shared
// objects (package-level vars, captured outer locals) it may derive
// from.
type symval struct {
	params  uint64
	seeds   uint64
	globals map[types.Object]bool
}

func (v *symval) add(o symval) bool {
	changed := false
	if o.params&^v.params != 0 {
		v.params |= o.params
		changed = true
	}
	if o.seeds&^v.seeds != 0 {
		v.seeds |= o.seeds
		changed = true
	}
	for g := range o.globals {
		if !v.globals[g] {
			if v.globals == nil {
				v.globals = make(map[types.Object]bool)
			}
			v.globals[g] = true
			changed = true
		}
	}
	return changed
}

func (v symval) empty() bool {
	return v.params == 0 && v.seeds == 0 && len(v.globals) == 0
}

// funcInfo is one analyzed function or function literal.
type funcInfo struct {
	idx  int
	name string
	pkg  *Package
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt
	sig  *types.Signature
	// params is the receiver (if any) followed by the parameters.
	params   []*types.Var
	paramIdx map[*types.Var]int
	// resultVars holds the (possibly unnamed) result objects.
	resultVars []*types.Var
	span       [2]token.Pos

	env       map[types.Object]*symval
	results   []symval // summary: taint of each result
	mutParams []symval // summary: taint written through each parameter
}

func (f *funcInfo) pos() token.Pos {
	if f.decl != nil {
		return f.decl.Pos()
	}
	return f.lit.Pos()
}

// seedInfo is one secret source established by a //metalint:secret
// directive.
type seedInfo struct {
	id   int
	name string
	pos  token.Position
	dir  *Directive
}

func (s *seedInfo) bit() uint64 {
	id := s.id
	if id >= maxSeeds {
		id = maxSeeds - 1
	}
	return 1 << uint(id)
}

// resultKey addresses a function's i-th result in the function-value
// flow graph.
type resultKey struct {
	f   *funcInfo
	idx int
}

// Records collected by the final pass.

type sinkRec struct {
	f    *funcInfo
	pos  token.Pos
	kind string
	desc string
	deps symval
}

type callArgRec struct {
	f      *funcInfo
	pos    token.Pos
	callee *funcInfo
	param  int
	deps   symval
}

type globalWriteRec struct {
	f    *funcInfo
	pos  token.Pos
	obj  types.Object
	deps symval
}

// provStep is one interprocedural hop of a seed's journey, forming a
// linked chain back toward the seed declaration.
type provStep struct {
	pos    token.Position
	desc   string
	parent *provStep
}

// tracker is the whole-program analysis state.
type tracker struct {
	fset  *token.FileSet
	pkgs  []*Package
	funcs []*funcInfo
	byObj map[*types.Func]*funcInfo
	byLit map[*ast.FuncLit]*funcInfo

	seeds  []*seedInfo
	seedOf map[types.Object]*seedInfo

	// funcVals holds the function-value flow facts: which concrete
	// functions may a variable, field, parameter, or result hold.
	funcVals map[any]map[*funcInfo]bool

	sinks        []sinkRec
	callArgs     []callArgRec
	globalWrites []globalWriteRec

	// Concrete propagation state: per function parameter and per
	// shared object, which seeds reach it and through which chain.
	reachedParam  map[*funcInfo][]map[int]*provStep
	reachedShared map[types.Object]map[int]*provStep
}

func newTracker(fset *token.FileSet, pkgs []*Package) *tracker {
	t := &tracker{
		fset:          fset,
		pkgs:          pkgs,
		byObj:         make(map[*types.Func]*funcInfo),
		byLit:         make(map[*ast.FuncLit]*funcInfo),
		seedOf:        make(map[types.Object]*seedInfo),
		funcVals:      make(map[any]map[*funcInfo]bool),
		reachedParam:  make(map[*funcInfo][]map[int]*provStep),
		reachedShared: make(map[types.Object]map[int]*provStep),
	}
	t.discoverFuncs()
	t.collectSeeds()
	return t
}

// discoverFuncs registers every declared function and function literal
// in deterministic (package, file, position) order.
func (t *tracker) discoverFuncs() {
	for _, pkg := range t.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body == nil {
						return true
					}
					obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
					if obj == nil {
						return true
					}
					sig, _ := obj.Type().(*types.Signature)
					if sig == nil {
						return true
					}
					f := t.addFunc(pkg, sig, fn.Body, fn.Pos(), fn.End())
					f.decl = fn
					f.name = funcDisplayName(pkg, obj)
					t.byObj[obj] = f
				case *ast.FuncLit:
					sig, _ := pkg.Info.Types[fn.Type].Type.(*types.Signature)
					if sig == nil {
						return true
					}
					f := t.addFunc(pkg, sig, fn.Body, fn.Pos(), fn.End())
					f.lit = fn
					p := t.fset.Position(fn.Pos())
					f.name = fmt.Sprintf("func@%s:%d", filepath.Base(p.Filename), p.Line)
					t.byLit[fn] = f
				}
				return true
			})
		}
	}
}

func (t *tracker) addFunc(pkg *Package, sig *types.Signature, body *ast.BlockStmt, lo, hi token.Pos) *funcInfo {
	f := &funcInfo{
		idx:      len(t.funcs),
		pkg:      pkg,
		body:     body,
		sig:      sig,
		paramIdx: make(map[*types.Var]int),
		env:      make(map[types.Object]*symval),
		span:     [2]token.Pos{lo, hi},
	}
	if recv := sig.Recv(); recv != nil {
		f.params = append(f.params, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		f.params = append(f.params, sig.Params().At(i))
	}
	for i, p := range f.params {
		f.paramIdx[p] = i
	}
	for i := 0; i < sig.Results().Len(); i++ {
		f.resultVars = append(f.resultVars, sig.Results().At(i))
	}
	f.results = make([]symval, len(f.resultVars))
	f.mutParams = make([]symval, len(f.params))
	t.funcs = append(t.funcs, f)
	t.reachedParam[f] = make([]map[int]*provStep, len(f.params))
	return f
}

func funcDisplayName(pkg *Package, obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		name := rt.String()
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s).%s", pkg.Name, name, obj.Name())
	}
	return pkg.Name + "." + obj.Name()
}

// collectSeeds resolves //metalint:secret directives to the variable
// and field objects they mark. A directive covers declarations on its
// own line and the line below; Names selects among them.
func (t *tracker) collectSeeds() {
	for _, pkg := range t.pkgs {
		for _, d := range pkg.SecretDirectives() {
			names := make(map[string]bool, len(d.Names))
			for _, n := range d.Names {
				names[n] = true
			}
			var cands []*types.Var
			for id, obj := range pkg.Info.Defs {
				v, ok := obj.(*types.Var)
				if !ok || !names[id.Name] {
					continue
				}
				pos := t.fset.Position(id.Pos())
				if pos.Filename != d.Pos.Filename || (pos.Line != d.Pos.Line && pos.Line != d.Pos.Line+1) {
					continue
				}
				cands = append(cands, v)
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].Pos() < cands[j].Pos() })
			for _, v := range cands {
				if t.seedOf[v] != nil {
					continue
				}
				s := &seedInfo{id: len(t.seeds), name: v.Name(), pos: t.fset.Position(v.Pos()), dir: d}
				t.seeds = append(t.seeds, s)
				t.seedOf[v] = s
				d.Use()
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Function-value flow: which concrete functions can a call through a
// variable or field reach?

func (t *tracker) addFuncVal(key any, f *funcInfo) bool {
	m := t.funcVals[key]
	if m == nil {
		m = make(map[*funcInfo]bool)
		t.funcVals[key] = m
	}
	if m[f] {
		return false
	}
	m[f] = true
	return true
}

// funcsAt returns the functions known to flow to key, in deterministic
// order.
func (t *tracker) funcsAt(key any) []*funcInfo {
	m := t.funcVals[key]
	if len(m) == 0 {
		return nil
	}
	out := make([]*funcInfo, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// funcsOf returns the concrete functions expression e can evaluate to
// under the current facts.
func (t *tracker) funcsOf(pkg *Package, e ast.Expr) []*funcInfo {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		switch o := pkg.Info.Uses[e].(type) {
		case *types.Func:
			if f := t.byObj[o]; f != nil {
				return []*funcInfo{f}
			}
		case *types.Var:
			return t.funcsAt(types.Object(o))
		}
	case *ast.SelectorExpr:
		switch o := pkg.Info.Uses[e.Sel].(type) {
		case *types.Func:
			if f := t.byObj[o]; f != nil {
				return []*funcInfo{f}
			}
		case *types.Var:
			return t.funcsAt(types.Object(o))
		}
	case *ast.FuncLit:
		if f := t.byLit[e]; f != nil {
			return []*funcInfo{f}
		}
	case *ast.CallExpr:
		var out []*funcInfo
		for _, b := range t.resolveCall(pkg, e) {
			out = append(out, t.funcsAt(resultKey{b.g, 0})...)
		}
		return out
	}
	return nil
}

// funcFlowFixpoint iterates assignment-shaped flows of function values
// until no new fact appears. Dynamic calls are re-resolved each round,
// so a function stored in a field and later called through it is
// reached even when the store is only discovered via another dynamic
// call.
func (t *tracker) funcFlowFixpoint() {
	for round := 0; round < 32; round++ {
		changed := false
		for _, f := range t.funcs {
			if t.funcFlowWalk(f) {
				changed = true
			}
		}
		for _, pkg := range t.pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						if t.flowAssign(pkg, nil, identExprs(vs.Names), vs.Values) {
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// funcFlowWalk performs one round of function-value flow collection
// over f's body (not descending into nested literals, which are their
// own funcInfos).
func (t *tracker) funcFlowWalk(f *funcInfo) bool {
	changed := false
	ast.Inspect(f.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested literals are their own funcInfos; their bodies are
			// walked in their own rounds.
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if t.flowAssign(f.pkg, f, n.Lhs, n.Rhs) {
				changed = true
			}
		case *ast.ValueSpec:
			if t.flowAssign(f.pkg, f, identExprs(n.Names), n.Values) {
				changed = true
			}
		case *ast.ReturnStmt:
			for i, r := range n.Results {
				if i >= len(f.resultVars) {
					break
				}
				for _, g := range t.funcsOf(f.pkg, r) {
					if t.addFuncVal(resultKey{f, i}, g) {
						changed = true
					}
				}
			}
		case *ast.CompositeLit:
			if t.flowCompositeLit(f.pkg, n) {
				changed = true
			}
		case *ast.CallExpr:
			for _, b := range t.resolveCall(f.pkg, n) {
				exprs := b.positional()
				for i, e := range exprs {
					pi := b.paramFor(i, len(exprs))
					if pi < 0 || pi >= len(b.g.params) {
						continue
					}
					for _, g2 := range t.funcsOf(f.pkg, e) {
						if t.addFuncVal(types.Object(b.g.params[pi]), g2) {
							changed = true
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

func (t *tracker) flowAssign(pkg *Package, f *funcInfo, lhs, rhs []ast.Expr) bool {
	changed := false
	assignTo := func(target ast.Expr, gs []*funcInfo) {
		obj := assignTargetObj(pkg, target)
		if obj == nil {
			return
		}
		for _, g := range gs {
			if t.addFuncVal(obj, g) {
				changed = true
			}
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			for i, target := range lhs {
				var gs []*funcInfo
				for _, b := range t.resolveCall(pkg, call) {
					gs = append(gs, t.funcsAt(resultKey{b.g, i})...)
				}
				assignTo(target, gs)
			}
			return changed
		}
	}
	for i, target := range lhs {
		if i < len(rhs) {
			assignTo(target, t.funcsOf(pkg, rhs[i]))
		}
	}
	return changed
}

// assignTargetObj resolves the object an assignment target stores into
// (a variable via ident, or a struct field via selector).
func assignTargetObj(pkg *Package, target ast.Expr) types.Object {
	switch target := unparen(target).(type) {
	case *ast.Ident:
		if o := pkg.Info.Defs[target]; o != nil {
			return o
		}
		return pkg.Info.Uses[target]
	case *ast.SelectorExpr:
		if o, ok := pkg.Info.Uses[target.Sel].(*types.Var); ok {
			return o
		}
	}
	return nil
}

func (t *tracker) flowCompositeLit(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return false
	}
	st, ok := deref(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	changed := false
	for i, el := range lit.Elts {
		var field types.Object
		value := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field = pkg.Info.Uses[key]
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil {
			continue
		}
		for _, g := range t.funcsOf(pkg, value) {
			if t.addFuncVal(field, g) {
				changed = true
			}
		}
	}
	return changed
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// ---------------------------------------------------------------------------
// Call resolution shared by the function-value pass and the taint
// walker.

type callBinding struct {
	g    *funcInfo
	recv ast.Expr // non-nil for method calls through a receiver value
	args []ast.Expr
}

// positional returns the argument expressions in parameter order
// (receiver first when present).
func (b callBinding) positional() []ast.Expr {
	if b.recv == nil {
		return b.args
	}
	out := make([]ast.Expr, 0, len(b.args)+1)
	out = append(out, b.recv)
	return append(out, b.args...)
}

// paramFor maps positional argument i to a parameter index, absorbing
// variadic tails and the bound-receiver offset (a method value called
// with one fewer argument than the method has parameters).
func (b callBinding) paramFor(i, nargs int) int {
	offset := 0
	if nargs == len(b.g.params)-1 {
		offset = 1
	}
	pi := i + offset
	if b.g.sig.Variadic() && pi >= len(b.g.params)-1 {
		pi = len(b.g.params) - 1
	}
	return pi
}

// resolveCall returns the concrete in-tree functions a call can reach:
// statically for declared functions and methods, via the
// function-value facts for calls through variables and fields. An
// empty result means the callee is unknown (interface method, standard
// library, unresolved value).
func (t *tracker) resolveCall(pkg *Package, call *ast.CallExpr) []callBinding {
	if isConversion(pkg.Info, call) {
		return nil
	}
	fun := unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		switch o := pkg.Info.Uses[fn].(type) {
		case *types.Func:
			if g := t.byObj[o]; g != nil {
				return []callBinding{{g: g, args: call.Args}}
			}
		case *types.Var:
			var out []callBinding
			for _, g := range t.funcsAt(types.Object(o)) {
				out = append(out, callBinding{g: g, args: call.Args})
			}
			return out
		}
	case *ast.SelectorExpr:
		switch o := pkg.Info.Uses[fn.Sel].(type) {
		case *types.Func:
			sig, _ := o.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				return nil // interface dispatch: unknown
			}
			g := t.byObj[o]
			if g == nil {
				return nil
			}
			if sel := pkg.Info.Selections[fn]; sel != nil && sel.Kind() == types.MethodVal {
				return []callBinding{{g: g, recv: fn.X, args: call.Args}}
			}
			// Qualified function or method expression: arguments map
			// positionally (a method expression's first argument is the
			// receiver, which is also params[0]).
			return []callBinding{{g: g, args: call.Args}}
		case *types.Var:
			var out []callBinding
			for _, g := range t.funcsAt(types.Object(o)) {
				out = append(out, callBinding{g: g, args: call.Args})
			}
			return out
		}
	case *ast.FuncLit:
		if g := t.byLit[fn]; g != nil {
			return []callBinding{{g: g, args: call.Args}}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// The taint walker: one pass over a function body, either growing the
// symbolic environment and summaries (fixpoint mode) or additionally
// recording sinks, call arguments, and shared writes (record mode).

type walker struct {
	t      *tracker
	f      *funcInfo
	record bool
	change bool
}

func (t *tracker) analyze(f *funcInfo, record bool) bool {
	changedAny := false
	for iter := 0; iter < 64; iter++ {
		w := &walker{t: t, f: f, record: record}
		for _, s := range f.body.List {
			w.stmt(s)
		}
		if w.change {
			changedAny = true
		}
		if record || !w.change {
			break
		}
	}
	return changedAny
}

func (w *walker) info() *types.Info { return w.f.pkg.Info }

// classify places an object in the function's addressing scheme.
const (
	objNone = iota
	objParam
	objLocal
	objShared
)

func (w *walker) classify(obj types.Object) (int, int) {
	v, ok := obj.(*types.Var)
	if !ok {
		return objNone, 0
	}
	if i, ok := w.f.paramIdx[v]; ok {
		return objParam, i
	}
	if v.Pos() >= w.f.span[0] && v.Pos() < w.f.span[1] {
		return objLocal, 0
	}
	return objShared, 0
}

func (w *walker) envVal(obj types.Object) symval {
	if sv := w.f.env[obj]; sv != nil {
		return *sv
	}
	return symval{}
}

func (w *walker) envAdd(obj types.Object, val symval) {
	if val.empty() {
		return
	}
	sv := w.f.env[obj]
	if sv == nil {
		sv = &symval{}
		w.f.env[obj] = sv
	}
	if sv.add(val) {
		w.change = true
	}
}

// objRead returns the taint of reading obj inside f.
func (w *walker) objRead(obj types.Object) symval {
	var out symval
	if seed := w.t.seedOf[obj]; seed != nil {
		out.add(symval{seeds: seed.bit()})
	}
	switch kind, i := w.classify(obj); kind {
	case objParam:
		out.add(symval{params: 1 << uint(i)})
		out.add(w.envVal(obj)) // taint written through the parameter locally
	case objLocal:
		out.add(w.envVal(obj))
		// A local can be captured by a nested function literal, whose
		// writes surface as shared-object flows; reading through the
		// shared channel too keeps the two views coherent.
		out.add(symval{globals: map[types.Object]bool{obj: true}})
	case objShared:
		out.add(symval{globals: map[types.Object]bool{obj: true}})
	}
	return out
}

// taintObj models a write of val into obj's referent.
func (w *walker) taintObj(obj types.Object, val symval, pos token.Pos) {
	if obj == nil || val.empty() {
		return
	}
	switch kind, i := w.classify(obj); kind {
	case objParam:
		w.envAdd(obj, val)
		if refLike(obj.Type(), nil) {
			if w.f.mutParams[i].add(val) {
				w.change = true
			}
		}
	case objLocal:
		w.envAdd(obj, val)
		// Mirror the write into the shared channel so nested literals
		// capturing this local observe it (see objRead).
		if w.record {
			w.t.globalWrites = append(w.t.globalWrites, globalWriteRec{f: w.f, pos: pos, obj: obj, deps: val})
		}
	case objShared:
		if w.record {
			w.t.globalWrites = append(w.t.globalWrites, globalWriteRec{f: w.f, pos: pos, obj: obj, deps: val})
		}
	}
}

// refLike reports whether writes through a value of this type can be
// observed by the caller (pointers, slices, maps, chans, interfaces,
// funcs, or aggregates containing them).
func refLike(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return refLike(u.Elem(), seen)
	}
	return false
}

// writeTarget resolves where a write through e lands: the field object
// for a struct-field selector (field-granular taint — writing x.f[i]
// taints field f, not all of x), the owning variable otherwise.
func (w *walker) writeTarget(e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if o := w.info().Uses[x]; o != nil {
				return o
			}
			return w.info().Defs[x]
		case *ast.SelectorExpr:
			if sel := w.info().Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return w.info().Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *walker) sink(pos token.Pos, kind string, e ast.Expr, deps symval) {
	if !w.record || deps.empty() {
		return
	}
	desc := types.ExprString(e)
	if len(desc) > 60 {
		desc = desc[:57] + "..."
	}
	w.t.sinks = append(w.t.sinks, sinkRec{f: w.f, pos: pos, kind: kind, desc: desc, deps: deps})
}

// expr computes the symbolic taint of e, recording index/alloc/spread
// sinks found inside it when in record mode.
func (w *walker) expr(e ast.Expr) symval {
	var out symval
	if e == nil {
		return out
	}
	if tv, ok := w.info().Types[e]; ok && tv.Value != nil {
		return out // constant expressions carry no secret
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.info().Uses[e]
		if obj == nil {
			obj = w.info().Defs[e]
		}
		if _, ok := obj.(*types.Var); ok {
			out.add(w.objRead(obj))
		}
	case *ast.ParenExpr:
		out.add(w.expr(e.X))
	case *ast.SelectorExpr:
		if sel := w.info().Selections[e]; sel != nil {
			switch sel.Kind() {
			case types.FieldVal:
				// Field taint is field-granular: reading x.f carries the
				// taint written into field f (anywhere) plus the taint of
				// the struct value itself, but NOT of x's other fields —
				// whole-struct coarseness would smear a tainted trace
				// field onto the page IDs stored beside it.
				out.add(w.expr(e.X))
				if fv, ok := sel.Obj().(*types.Var); ok {
					out.add(symval{globals: map[types.Object]bool{fv: true}})
					if seed := w.t.seedOf[fv]; seed != nil {
						out.add(symval{seeds: seed.bit()})
					}
				}
			case types.MethodVal:
				out.add(w.expr(e.X))
			}
		} else if obj, ok := w.info().Uses[e.Sel].(*types.Var); ok {
			// Qualified reference to another package's variable.
			out.add(w.objRead(obj))
		}
	case *ast.IndexExpr:
		if tv, ok := w.info().Types[e.Index]; ok && tv.IsType() {
			out.add(w.expr(e.X)) // generic instantiation, not an index
			break
		}
		idx := w.expr(e.Index)
		w.sink(e.Pos(), "index", e, idx)
		out.add(w.expr(e.X))
		out.add(idx)
	case *ast.IndexListExpr:
		out.add(w.expr(e.X))
	case *ast.SliceExpr:
		// Bounds are deliberately not sinks (documented limit); their
		// taint still flows into the value.
		out.add(w.expr(e.X))
		out.add(w.expr(e.Low))
		out.add(w.expr(e.High))
		out.add(w.expr(e.Max))
	case *ast.StarExpr:
		out.add(w.expr(e.X))
	case *ast.UnaryExpr:
		out.add(w.expr(e.X))
	case *ast.BinaryExpr:
		out.add(w.expr(e.X))
		out.add(w.expr(e.Y))
	case *ast.TypeAssertExpr:
		out.add(w.expr(e.X))
	case *ast.CompositeLit:
		var st *types.Struct
		isMap := false
		if tv, ok := w.info().Types[e]; ok {
			switch u := deref(tv.Type).Underlying().(type) {
			case *types.Struct:
				st = u
			case *types.Map:
				isMap = true
			}
		}
		for i, el := range e.Elts {
			if st != nil {
				// Struct literal: entries land in their fields
				// (field-granular, like assignments), not in the value.
				var field types.Object
				value := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						field = w.info().Uses[key]
					}
					value = kv.Value
				} else if i < st.NumFields() {
					field = st.Field(i)
				}
				w.taintObj(field, w.expr(value), el.Pos())
				continue
			}
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if isMap {
					out.add(w.expr(kv.Key))
				}
				out.add(w.expr(kv.Value))
				continue
			}
			out.add(w.expr(el))
		}
	case *ast.CallExpr:
		out.add(w.call(e))
	case *ast.FuncLit:
		// The closure value itself is clean; its body is analyzed as
		// its own function, with captured locals as shared objects.
	}
	return out
}

// call models a call expression's result taint plus its side effects
// (argument hand-off records, callee mutation summaries, builtins).
func (w *walker) call(call *ast.CallExpr) symval {
	return w.callN(call, 1)[0]
}

// callN models a call with n expected results.
func (w *walker) callN(call *ast.CallExpr, n int) []symval {
	out := make([]symval, n)
	if isConversion(w.info(), call) {
		if len(call.Args) == 1 {
			out[0].add(w.expr(call.Args[0]))
		}
		return out
	}
	// Variadic spread of a tainted slice is a sink regardless of the
	// callee: the argument count (and the copy) depend on the secret.
	if call.Ellipsis.IsValid() && len(call.Args) > 0 {
		last := call.Args[len(call.Args)-1]
		w.sink(call.Ellipsis, "spread", last, w.expr(last))
	}
	if bi, ok := callee(w.info(), call).(*types.Builtin); ok {
		out[0].add(w.builtin(call, bi))
		return out
	}
	bindings := w.t.resolveCall(w.f.pkg, call)
	if len(bindings) == 0 {
		// Unknown callee (interface method, standard library,
		// unresolved value): results derive from all arguments and the
		// receiver; side effects are not modelled.
		var uv symval
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := w.info().Selections[sel]; s != nil {
				uv.add(w.expr(sel.X))
			}
		}
		for _, a := range call.Args {
			uv.add(w.expr(a))
		}
		for i := range out {
			out[i].add(uv)
		}
		return out
	}
	for _, b := range bindings {
		exprs := b.positional()
		argvals := make([]symval, len(b.g.params))
		roots := make([]types.Object, len(b.g.params))
		for i, e := range exprs {
			pi := b.paramFor(i, len(exprs))
			if pi < 0 || pi >= len(argvals) {
				continue
			}
			argvals[pi].add(w.expr(e))
			if roots[pi] == nil {
				roots[pi] = w.writeTarget(e)
			}
		}
		if w.record {
			for pi := range argvals {
				if argvals[pi].empty() {
					continue
				}
				w.t.callArgs = append(w.t.callArgs, callArgRec{
					f: w.f, pos: call.Pos(), callee: b.g, param: pi, deps: argvals[pi],
				})
			}
		}
		// Mutation summaries: data the callee writes through parameter
		// pi lands in the argument's root object.
		for pi := range b.g.mutParams {
			mv := b.g.mutParams[pi]
			if mv.empty() || roots[pi] == nil {
				continue
			}
			w.taintObj(roots[pi], instantiate(mv, argvals), call.Pos())
		}
		for i := range out {
			if i < len(b.g.results) {
				out[i].add(instantiate(b.g.results[i], argvals))
			}
		}
	}
	return out
}

// instantiate maps a callee-domain symbolic value into the caller's
// domain by substituting this call site's argument taints for the
// callee's parameter bits.
func instantiate(sv symval, argvals []symval) symval {
	out := symval{seeds: sv.seeds}
	for g := range sv.globals {
		if out.globals == nil {
			out.globals = make(map[types.Object]bool)
		}
		out.globals[g] = true
	}
	for i := 0; i < len(argvals) && i < 64; i++ {
		if sv.params&(1<<uint(i)) != 0 {
			out.add(argvals[i])
		}
	}
	return out
}

func (w *walker) builtin(call *ast.CallExpr, bi *types.Builtin) symval {
	var out symval
	switch bi.Name() {
	case "len", "cap":
		// A secret value's length (limb count, buffer size) is itself
		// secret: it bounds loops and sizes allocations.
		out.add(w.expr(call.Args[0]))
	case "append":
		for _, a := range call.Args {
			out.add(w.expr(a))
		}
	case "make":
		var size symval
		for _, a := range call.Args[1:] {
			size.add(w.expr(a))
		}
		w.sink(call.Pos(), "alloc", call, size)
		out.add(size)
	case "copy":
		if len(call.Args) == 2 {
			src := w.expr(call.Args[1])
			w.taintObj(w.writeTarget(call.Args[0]), src, call.Pos())
			out.add(src)
			out.add(w.expr(call.Args[0]))
		}
	case "min", "max", "complex", "real", "imag":
		for _, a := range call.Args {
			out.add(w.expr(a))
		}
	default:
		// new, delete, clear, panic, print, println, recover: no
		// result taint worth modelling.
		for _, a := range call.Args {
			w.expr(a) // still record sinks inside the arguments
		}
	}
	return out
}

// rhsValues evaluates the right-hand side of an n-target assignment.
func (w *walker) rhsValues(rhs []ast.Expr, n int) []symval {
	if len(rhs) == 1 && n > 1 {
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			return w.callN(call, n)
		}
		// v, ok := m[k] / x.(T) / <-ch: both values carry the operand's
		// taint (presence is data-dependent too).
		v := w.expr(rhs[0])
		out := make([]symval, n)
		for i := range out {
			out[i].add(v)
		}
		return out
	}
	out := make([]symval, n)
	for i := range out {
		if i < len(rhs) {
			out[i].add(w.expr(rhs[i]))
		}
	}
	return out
}

// assignTo models storing val into target.
func (w *walker) assignTo(target ast.Expr, val symval) {
	switch x := unparen(target).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := w.info().Defs[x]
		if obj == nil {
			obj = w.info().Uses[x]
		}
		w.taintObj(obj, val, x.Pos())
	case *ast.SelectorExpr:
		w.taintObj(w.writeTarget(x), val, x.Pos())
	case *ast.IndexExpr:
		idx := w.expr(x.Index)
		w.sink(x.Pos(), "index", x, idx)
		var both symval
		both.add(val)
		both.add(idx)
		w.taintObj(w.writeTarget(x.X), both, x.Pos())
	case *ast.StarExpr:
		w.taintObj(w.writeTarget(x.X), val, x.Pos())
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Op-assign: x op= e unions e's taint into x (the old value
			// persists because taint only grows).
			var val symval
			val.add(w.expr(s.Lhs[0]))
			val.add(w.expr(s.Rhs[0]))
			w.assignTo(s.Lhs[0], val)
			return
		}
		vals := w.rhsValues(s.Rhs, len(s.Lhs))
		for i, target := range s.Lhs {
			w.assignTo(target, vals[i])
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			vals := w.rhsValues(vs.Values, len(vs.Names))
			for i, name := range vs.Names {
				w.assignTo(name, vals[i])
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.IfStmt:
		w.stmt(s.Init)
		cond := w.expr(s.Cond)
		w.sink(s.Pos(), "branch", s.Cond, cond)
		w.stmtBlock(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			cond := w.expr(s.Cond)
			w.sink(s.Pos(), "loop-bound", s.Cond, cond)
		}
		w.stmt(s.Post)
		w.stmtBlock(s.Body)
	case *ast.RangeStmt:
		x := w.expr(s.X)
		overArray := false
		if tv, ok := w.info().Types[s.X]; ok {
			switch deref(tv.Type).Underlying().(type) {
			case *types.Array:
				overArray = true // fixed trip count: not a bound sink
			}
		}
		if !overArray {
			w.sink(s.Pos(), "loop-bound", s.X, x)
		}
		if s.Key != nil && !overArray {
			w.assignTo(s.Key, x)
		}
		if s.Value != nil {
			w.assignTo(s.Value, x)
		}
		w.stmtBlock(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		var tag symval
		if s.Tag != nil {
			tag = w.expr(s.Tag)
			w.sink(s.Pos(), "branch", s.Tag, tag)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			var cv symval
			for _, e := range clause.List {
				cv.add(w.expr(e))
			}
			if s.Tag == nil {
				// case-expression switch: each clause is a condition
				w.sinkClause(clause, cv)
			} else {
				w.sinkClause(clause, cv) // tainted comparand
			}
			for _, bs := range clause.Body {
				w.stmt(bs)
			}
		}
	case *ast.TypeSwitchStmt:
		// The dynamic type of a secret is out of scope (documented
		// limit); bodies are still walked.
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, cc := range s.Body.List {
			for _, bs := range cc.(*ast.CaseClause).Body {
				w.stmt(bs)
			}
		}
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			// Bare return: named results carry their current env taint.
			for i, rv := range w.f.resultVars {
				if rv != nil && rv.Name() != "" {
					if w.f.results[i].add(w.envVal(rv)) {
						w.change = true
					}
				}
			}
			return
		}
		if len(s.Results) == 1 && len(w.f.resultVars) > 1 {
			if call, ok := unparen(s.Results[0]).(*ast.CallExpr); ok {
				vals := w.callN(call, len(w.f.resultVars))
				for i := range w.f.resultVars {
					if w.f.results[i].add(vals[i]) {
						w.change = true
					}
				}
				return
			}
		}
		for i, r := range s.Results {
			if i >= len(w.f.results) {
				break
			}
			if w.f.results[i].add(w.expr(r)) {
				w.change = true
			}
		}
	case *ast.BlockStmt:
		w.stmtBlock(s)
	case *ast.DeferStmt:
		w.call(s.Call)
	case *ast.GoStmt:
		w.call(s.Call)
	case *ast.SendStmt:
		// Channel flows are out of scope (documented limit); operand
		// sinks are still recorded.
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			w.stmt(comm.Comm)
			for _, bs := range comm.Body {
				w.stmt(bs)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *walker) sinkClause(clause *ast.CaseClause, deps symval) {
	if len(clause.List) == 0 || deps.empty() {
		return
	}
	w.sink(clause.Pos(), "branch", clause.List[0], deps)
}

func (w *walker) stmtBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

// ---------------------------------------------------------------------------
// Concrete propagation: push seeds through the recorded call-argument
// and shared-write hand-offs, with provenance.

// instSeeds resolves a symbolic dependency set inside f to the seeds
// concretely reaching it, each with the provenance chain that carried
// it there (nil chain: the seed is read directly in f).
func (t *tracker) instSeeds(f *funcInfo, deps symval) map[int]*provStep {
	out := make(map[int]*provStep)
	for _, s := range t.seeds {
		if deps.seeds&s.bit() != 0 {
			if _, ok := out[s.id]; !ok {
				out[s.id] = nil
			}
		}
	}
	for i := 0; i < len(t.reachedParam[f]) && i < 64; i++ {
		if deps.params&(1<<uint(i)) == 0 {
			continue
		}
		for _, id := range sortedSeedIDs(t.reachedParam[f][i]) {
			if _, ok := out[id]; !ok {
				out[id] = t.reachedParam[f][i][id]
			}
		}
	}
	for _, g := range sortedObjs(deps.globals) {
		for _, id := range sortedSeedIDs(t.reachedShared[g]) {
			if _, ok := out[id]; !ok {
				out[id] = t.reachedShared[g][id]
			}
		}
	}
	return out
}

func sortedSeedIDs(m map[int]*provStep) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func sortedObjs(m map[types.Object]bool) []types.Object {
	if len(m) == 0 {
		return nil
	}
	out := make([]types.Object, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// propagate runs the concrete seed fixpoint over the recorded
// hand-offs.
func (t *tracker) propagate() {
	for round := 0; round < 1024; round++ {
		changed := false
		for _, ca := range t.callArgs {
			reached := t.instSeeds(ca.f, ca.deps)
			slot := t.reachedParam[ca.callee]
			if slot[ca.param] == nil {
				slot[ca.param] = make(map[int]*provStep)
			}
			pname := ""
			if ca.param < len(ca.callee.params) {
				pname = ca.callee.params[ca.param].Name()
			}
			for _, id := range sortedSeedIDsOf(reached) {
				if _, ok := slot[ca.param][id]; ok {
					continue
				}
				slot[ca.param][id] = &provStep{
					pos:    t.fset.Position(ca.pos),
					desc:   fmt.Sprintf("arg %s to %s", pname, ca.callee.name),
					parent: reached[id],
				}
				changed = true
			}
		}
		for _, gw := range t.globalWrites {
			reached := t.instSeeds(gw.f, gw.deps)
			slot := t.reachedShared[gw.obj]
			if slot == nil {
				slot = make(map[int]*provStep)
				t.reachedShared[gw.obj] = slot
			}
			for _, id := range sortedSeedIDsOf(reached) {
				if _, ok := slot[id]; ok {
					continue
				}
				slot[id] = &provStep{
					pos:    t.fset.Position(gw.pos),
					desc:   fmt.Sprintf("stored into %s", gw.obj.Name()),
					parent: reached[id],
				}
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func sortedSeedIDsOf(m map[int]*provStep) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// chainFor renders the seed-to-sink provenance for one sink, seed
// first.
func (t *tracker) chainFor(sink sinkRec, seedID int, prov *provStep) []ChainStep {
	seed := t.seeds[seedID]
	var hops []ChainStep
	for p := prov; p != nil; p = p.parent {
		hops = append(hops, ChainStep{Desc: p.desc, File: p.pos.Filename, Line: p.pos.Line})
		if len(hops) > 32 {
			break
		}
	}
	// hops were collected sink-to-seed; reverse them.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	pos := t.fset.Position(sink.pos)
	chain := []ChainStep{{Desc: "secret " + seed.name, File: seed.pos.Filename, Line: seed.pos.Line}}
	chain = append(chain, hops...)
	return append(chain, ChainStep{Desc: sink.kind + " " + sink.desc, File: pos.Filename, Line: pos.Line})
}

func chainString(chain []ChainStep) string {
	parts := make([]string, len(chain))
	for i, c := range chain {
		parts[i] = fmt.Sprintf("%s (%s:%d)", c.Desc, filepath.Base(c.File), c.Line)
	}
	return strings.Join(parts, " -> ")
}
