// Package outside is not in the cycle-accounted package set: discarding
// a latency here is out of scope for cycleleak and must not be flagged.
package outside

import "internal/sim"

// Discard drops a latency outside the accounted packages; clean.
func Discard(b uint64) {
	sim.Read(b)
}
