// Package sim is a golden-test fixture for the cycleleak analyzer: its
// import path ends in internal/sim, so it is in the cycle-accounted set.
package sim

import "internal/arch"

var now arch.Cycles

// Read models a latency-returning access.
func Read(b uint64) arch.Cycles { return arch.Cycles(b % 7) }

// ReadData models a value-plus-latency access.
func ReadData(b uint64) (uint64, arch.Cycles) { return b, arch.Cycles(b % 7) }

// Evict models a latency-free operation.
func Evict(b uint64) {}

// LeakBare discards the latency in statement position; flagged.
func LeakBare(b uint64) {
	Read(b)
}

// LeakBlank discards the latency via the blank identifier; flagged.
func LeakBlank(b uint64) {
	_ = Read(b)
}

// LeakTuple keeps the data but blanks the latency; flagged.
func LeakTuple(b uint64) uint64 {
	v, _ := ReadData(b)
	return v
}

// Accounted folds the latency into the clock; clean.
func Accounted(b uint64) {
	now += Read(b)
}

// WarmAllowed discards the latency intentionally and says so; clean.
func WarmAllowed(b uint64) {
	//metalint:allow cycleleak fixture: warm-up access, latency irrelevant
	Read(b)
}

// NoLatency calls a function with no cycle result; clean.
func NoLatency(b uint64) {
	Evict(b)
}
