// Package arch is a stub standing in for metaleak/internal/arch in the
// cycleleak golden test.
package arch

// Cycles counts simulated processor cycles.
type Cycles uint64
