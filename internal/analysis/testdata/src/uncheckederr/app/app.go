// Package app exercises the uncheckederr analyzer: dropped errors from
// the guarded frame-placement primitives are flagged anywhere, handled
// errors and out-of-scope callees are not.
package app

import (
	"internal/core"
	"internal/sim"
)

// AllocFrame shadows the guarded name outside internal/sim; ignoring
// its error is out of scope and must not be flagged.
func AllocFrame(frame uint64) error { return nil }

// LeakBare drops the claim error in statement position; flagged.
func LeakBare(a *core.Attacker) {
	a.ClaimFrame(7)
}

// LeakBlank drops the placement error via the blank identifier; flagged.
func LeakBlank(s *sim.System) {
	_ = s.AllocFrame(0, 7)
}

// LeakDefer drops the error of a deferred claim; flagged.
func LeakDefer(a *core.Attacker) {
	defer a.ClaimFrame(9)
}

// Handled checks the error; clean.
func Handled(a *core.Attacker) error {
	if err := a.ClaimFrame(7); err != nil {
		return err
	}
	return nil
}

// ProbeAllowed ignores the error intentionally and says so; clean.
func ProbeAllowed(a *core.Attacker) {
	//metalint:allow uncheckederr fixture: probing frame ownership, failure expected
	a.ClaimFrame(7)
}

// OutOfScope drops errors and results from unguarded callees; clean.
func OutOfScope(s *sim.System) {
	AllocFrame(7)
	_ = AllocFrame(8)
	s.FreeFrame(7)
}
