// Package core is a golden-test fixture for the uncheckederr analyzer:
// its import path ends in internal/core, so its ClaimFrame is in the
// guarded set.
package core

import "internal/sim"

// Attacker models the unprivileged attack process.
type Attacker struct {
	Sys  *sim.System
	Core int
}

// ClaimFrame allocates a specific frame to this attacker.
func (a *Attacker) ClaimFrame(frame uint64) error {
	return a.Sys.AllocFrame(a.Core, frame)
}
