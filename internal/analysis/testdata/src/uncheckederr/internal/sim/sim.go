// Package sim is a golden-test fixture for the uncheckederr analyzer:
// its import path ends in internal/sim, so its AllocFrame is in the
// guarded set.
package sim

// System models the simulated machine's frame allocator.
type System struct {
	owned map[uint64]bool
}

// AllocFrame grants a specific frame; it fails when the frame is taken.
func (s *System) AllocFrame(core int, frame uint64) error {
	if s.owned[frame] {
		return errTaken
	}
	return nil
}

// FreeFrame has no error result; ignoring it is out of scope.
func (s *System) FreeFrame(frame uint64) {}

var errTaken = errorString("frame owned")

type errorString string

func (e errorString) Error() string { return string(e) }
