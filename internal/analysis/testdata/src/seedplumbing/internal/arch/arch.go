// Package arch is a stub standing in for metaleak/internal/arch in the
// seedplumbing golden test.
package arch

// RNG is a stub of the seeded deterministic generator.
type RNG struct{ state uint64 }

// NewRNG mirrors the real constructor's shape: seed then stream keys.
func NewRNG(seed uint64, stream ...uint64) *RNG {
	r := &RNG{state: seed}
	for _, s := range stream {
		r.state ^= s
	}
	return r
}

// Uint64 advances the stub state.
func (r *RNG) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}
