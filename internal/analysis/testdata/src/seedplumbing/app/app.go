// Package app is a golden-test fixture for the seedplumbing analyzer.
package app

import "internal/arch"

// Config stands in for the experiment configuration that owns the seed.
type Config struct{ Seed uint64 }

const defaultSeed = 0xdead

// LiteralBad seeds from an integer literal; flagged.
func LiteralBad() *arch.RNG {
	return arch.NewRNG(42)
}

// ConstBad seeds from a named constant — still compile-time; flagged.
func ConstBad() *arch.RNG {
	return arch.NewRNG(defaultSeed, 7)
}

// ExprBad hides the literal behind constant arithmetic and parens;
// still compile-time; flagged.
func ExprBad() *arch.RNG {
	return arch.NewRNG((1 << 20) ^ 0x17)
}

// PlumbedGood derives the seed from the configuration; clean. Constant
// stream keys are domain-separation tags, not entropy, and stay legal.
func PlumbedGood(cfg Config) *arch.RNG {
	return arch.NewRNG(cfg.Seed^0xcafe, 0xFA, 0x17)
}

// ForkGood seeds from another generator's draw; clean.
func ForkGood(r *arch.RNG) *arch.RNG {
	return arch.NewRNG(r.Uint64())
}

// DemoAllowed is annotated (e.g. a fixed demo stream); clean.
func DemoAllowed() *arch.RNG {
	//metalint:allow seedplumbing fixture: fixed demo stream
	return arch.NewRNG(1)
}
