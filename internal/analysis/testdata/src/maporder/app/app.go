// Package app is a golden-test fixture for the maporder analyzer.
package app

import (
	"sort"

	"internal/sim"
)

// DrainBad replays owned blocks in map-iteration order; the call into
// sim advances simulator state, so the loop is flagged.
func DrainBad(owned map[uint64]bool) {
	for b := range owned {
		sim.Touch(b)
	}
}

// CollectBad builds a result slice in map-iteration order and never
// sorts it; flagged.
func CollectBad(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted uses the collect-then-sort idiom; the later sort
// canonicalizes the order, so the loop is clean.
func CollectSorted(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DrainAllowed is annotated: the author asserts order does not matter.
func DrainAllowed(owned map[uint64]bool) {
	//metalint:allow maporder fixture: touches are asserted commutative
	for b := range owned {
		sim.Touch(b)
	}
}

// Sum accumulates commutatively and appends only to a loop-local slice;
// clean.
func Sum(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		var parts []int
		parts = append(parts, v)
		total += parts[0]
	}
	return total
}
