// Package sim is a stub standing in for metaleak/internal/sim in the
// maporder golden test: its import path ends in internal/sim, so calls
// into it count as advancing simulator state.
package sim

var clock uint64

// Touch models a state-advancing access.
func Touch(block uint64) { clock += block }
