package sim

import (
	"testing"
	"time"
)

// Test files may time themselves; this use must not be flagged.
func TestElapsed(t *testing.T) {
	start := time.Now()
	if Elapsed() < 0 {
		t.Fatal("negative elapsed time")
	}
	_ = time.Since(start)
}
