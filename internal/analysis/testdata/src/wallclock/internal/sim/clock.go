// Package sim is a golden-test fixture for the wallclock analyzer.
package sim

import "time"

// Elapsed uses the host clock twice; both uses must be flagged.
func Elapsed() float64 {
	start := time.Now()
	work()
	return time.Since(start).Seconds()
}

// Throttle sleeps, but is annotated; the finding must be suppressed.
func Throttle() {
	//metalint:allow wallclock fixture: sanctioned operator-side delay
	time.Sleep(time.Millisecond)
}

// Format uses package time without touching the clock; time.Duration
// formatting is not a wall-clock read and must not be flagged.
func Format(d time.Duration) string { return d.String() }

func work() {}
