// Package harness is outside secretflow's reporting scope: taint
// still propagates into it (analysis is whole-program), but findings
// here must not be reported — Match gates reporting, not analysis.
package harness

import "internal/victim"

// Run branches on a value that is tainted across the package
// boundary; no diagnostic may appear for this file.
func Run(d *victim.Device) int {
	if victim.Weight(d) > 0 {
		return 1
	}
	return 0
}

// Clean branches on Process's result, which is untainted (classify
// returns constants) — pinning that taint does not smear through
// clean results.
func Clean(d *victim.Device) int {
	if victim.Process(d) == 1 {
		return 1
	}
	return 0
}

//metalint:allow nosuchanalyzer this name is unknown and must be warned about
var x = 1

//metalint:allow
var y = 2
