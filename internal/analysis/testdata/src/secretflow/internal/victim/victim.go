// Package victim is the secretflow fixture: a miniature keyed device
// whose secret must reach sinks only at declared leaky sites. It plants
// two undeclared secret-dependent branches — one reached through a
// function-valued field (the mpi.Hooks pattern) — and a set of
// annotated sites covering every sink kind for the inventory golden.
package victim

// Device models a keyed victim.
type Device struct {
	//metalint:secret Key -- long-term key material
	Key  []byte
	Mask int
}

// Hooks carries an observer callback through a function-valued field;
// taint must follow the value stored in Emit, not the field's type.
type Hooks struct {
	Emit func(v int) int
}

// derive is interprocedural hop 1: the secret leaves the struct through
// a helper's return value. The loop bound and index are public (fixed
// count, loop counter), so derive itself is silent.
func derive(d *Device) int {
	sum := 0
	for i := 0; i < 4; i++ {
		sum += int(d.Key[i])
	}
	return sum
}

// shape is only ever reached through the Hooks.Emit field. The branch
// below is a planted finding: it exists for the analyzer only if the
// call through the field was resolved and the argument taint
// propagated into shape's parameter.
func shape(v int) int {
	if v > 128 {
		return v - 128
	}
	return v
}

// classify is interprocedural hop 3, a plain static call.
func classify(v int) int {
	if v&1 == 1 {
		return 1
	}
	return 0
}

// Process wires the hops: secret -> derive -> Emit field -> classify.
// Its own result is clean (classify returns constants), so callers of
// Process stay untainted.
func Process(d *Device) int {
	h := Hooks{Emit: shape}
	v := h.Emit(derive(d))
	return classify(v)
}

// Weight exposes a tainted value across the package boundary; the
// harness package branches on it, which must stay unreported because
// harness is outside the analyzer's reporting scope.
func Weight(d *Device) int {
	return derive(d)
}

var table [256]int

// Lookup is a declared leak: a table indexed by a key byte.
func Lookup(d *Device) int {
	//metalint:leaky addr table indexed by a key byte
	return table[d.Key[0]]
}

// Pad is two declared leaks: an allocation sized by the secret length
// and a variadic spread of the secret bytes.
func Pad(d *Device) []byte {
	n := len(d.Key)
	//metalint:leaky alloc output sized by the secret length
	out := make([]byte, 0, n)
	//metalint:leaky access-sequence secret bytes copied behind the pad
	out = append(out, d.Key...)
	return out
}

// Mix is two declared leaks: a trip count proportional to the key
// length, and a branch whose multi-line condition is covered by a
// directive on the line above the statement.
func Mix(d *Device) int {
	acc := 0
	//metalint:leaky trip-count mixing loop runs once per key byte
	for i := 0; i < len(d.Key); i++ {
		acc += int(d.Key[i])
	}
	//metalint:leaky branch-skew accumulated parity gates the result
	if acc&d.Mask != 0 &&
		acc > 0 {
		return 1
	}
	return 0
}

// Debug's branch is secret-dependent but human-judged acceptable for
// the fixture; the allow directive must suppress it (and count as
// used, not stale).
func Debug(d *Device) int {
	//metalint:allow secretflow fixture: debug-only emptiness probe
	if len(d.Key) == 0 {
		return 0
	}
	return 1
}

// Stale directives, kept deliberately: the stale-directive scan must
// flag each of these (asserted in secretflow_test.go). None of them
// affects the diagnostics golden.

//metalint:secret Ghost -- names no declaration on this or the next line
var Exported = 1

//metalint:leaky addr covers no secret-dependent site
var ExportedToo = 2
