package gen

import (
	"math/rand"
	"testing"
)

// Tests may use math/rand (shuffled inputs, property tests); this file
// must not be flagged.
func TestJitter(t *testing.T) {
	if Jitter(1+rand.Intn(8)) < 0 {
		t.Fatal("negative jitter")
	}
}
