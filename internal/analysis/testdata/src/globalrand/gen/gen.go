// Package gen is a golden-test fixture for the globalrand analyzer.
package gen

import "math/rand"

// Jitter draws from the process-seeded global generator; the import is
// flagged (one finding per offending import, not per call site).
func Jitter(n int) int {
	return rand.Intn(n) + rand.Intn(n)
}
