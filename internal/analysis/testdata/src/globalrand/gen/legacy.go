package gen

import (
	//metalint:allow globalrand fixture: quarantined legacy shim
	"math/rand"
)

// Legacy draws from the global generator under an allow directive; the
// finding must be suppressed.
func Legacy() int { return rand.Int() }
