// Package app is a golden-test fixture for the floatcycles analyzer.
package app

import "internal/arch"

// ScaleBad routes a latency through floating point; flagged.
func ScaleBad(lat arch.Cycles) arch.Cycles {
	return arch.Cycles(float64(lat) * 1.5)
}

// ScaleGood expresses the same factor as an exact integer ratio; clean.
func ScaleGood(lat arch.Cycles) arch.Cycles {
	return lat * 3 / 2
}

// ConstGood converts a constant; the compiler evaluates it exactly, so
// it is clean.
func ConstGood() arch.Cycles {
	return arch.Cycles(1.5e3)
}

// ScaleAllowed is annotated (e.g. a display-only estimate); clean.
func ScaleAllowed(lat arch.Cycles) arch.Cycles {
	//metalint:allow floatcycles fixture: display-only estimate
	return arch.Cycles(float64(lat) * 0.5)
}
