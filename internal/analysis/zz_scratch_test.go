package analysis

import (
	"testing"
)

func TestVariadicZeroArgBinding(t *testing.T) {
	loader := NewLoader(Config{Dir: "/tmp/vfix"})
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if errs := FirstTypeErrors(pkgs, 5); len(errs) > 0 {
		t.Fatalf("fixture does not type-check: %v", errs)
	}
	sf := ByName("secretflow")
	orig := sf.Match
	sf.Match = nil
	defer func() { sf.Match = orig }()
	res := Run(pkgs, []*Analyzer{sf})
	for _, d := range res.Diagnostics {
		t.Logf("diag: %s", d)
	}
	if len(res.Diagnostics) == 0 {
		t.Errorf("no diagnostic for secret-dependent branch through variadic call with zero variadic args")
	}
}
