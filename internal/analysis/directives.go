package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRE matches the suppression directive:
//
//	//metalint:allow wallclock reason...
//	//metalint:allow maporder,cycleleak -- reason...
//
// The directive must start the comment (no leading space before
// "metalint:", mirroring //go: directives).
var allowRE = regexp.MustCompile(`^//metalint:allow[ \t]+([a-zA-Z0-9_,-]+)`)

// allowSet maps file name -> line -> analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

// collectAllows gathers every allow directive in the package's files. A
// directive covers its own line (trailing comment) and the line directly
// below it (preceding-line comment).
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return set
}

// allowedAt reports whether a finding by the named analyzer at the given
// position is covered by a directive on the same line or the line above.
func (p *Package) allowedAt(analyzer string, pos token.Position) bool {
	lines := p.allows[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}
