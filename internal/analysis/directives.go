package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// DirectiveKind distinguishes the three metalint directive families.
type DirectiveKind string

// Directive kinds.
const (
	// DirAllow suppresses a finding that the human judged a false
	// positive: //metalint:allow <analyzer>[,<analyzer>...] [reason]
	DirAllow DirectiveKind = "allow"
	// DirSecret marks a declaration as a taint source for secretflow:
	// //metalint:secret <name>[,<name>...] [reason]
	DirSecret DirectiveKind = "secret"
	// DirLeaky declares a secret-dependent site as an intentional,
	// inventoried leak: //metalint:leaky <channel> [reason]
	DirLeaky DirectiveKind = "leaky"
)

// Directive is one parsed //metalint: comment. A directive covers its
// own line (trailing comment) and the line directly below it
// (preceding-line comment) — the same rule for all three kinds.
type Directive struct {
	Kind DirectiveKind
	Pos  token.Position
	// Analyzers lists the analyzer names an allow directive silences.
	Analyzers []string
	// Names restricts a secret directive to the named declarations on
	// the covered lines (required: one line may declare several objects,
	// of which usually only some are secret).
	Names []string
	// Channel is a leaky directive's leakage-channel label
	// (access-sequence, trip-count, addr, ctr-bump, itree-node,
	// out-of-model, ...).
	Channel string
	// Reason is the free-text justification.
	Reason string
	// malformed carries a parse-problem description; such directives do
	// nothing and are always warned about.
	malformed string

	used bool
}

// Use marks the directive as having done its job (suppressed a finding,
// seeded a secret, or covered a leak site), excluding it from the
// stale-directive scan.
func (d *Directive) Use() { d.used = true }

// Used reports whether the directive did anything this run.
func (d *Directive) Used() bool { return d.used }

// directiveSet indexes a package's directives by file and line.
type directiveSet struct {
	byFileLine map[string]map[int][]*Directive
	list       []*Directive // file/position order
}

// directiveRE matches the common prefix; the rest is parsed by hand so
// malformed directives can be reported instead of silently ignored. The
// directive must start the comment (no leading space before
// "metalint:", mirroring //go: directives).
var directiveRE = regexp.MustCompile(`^//metalint:(\S+)[ \t]*(.*)$`)

var (
	nameListRE = regexp.MustCompile(`^[a-zA-Z0-9_-]+(,[a-zA-Z0-9_-]+)*$`)
	channelRE  = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)
)

// parseDirective parses one comment. It returns nil when the comment is
// not a metalint directive at all.
func parseDirective(pos token.Position, text string) *Directive {
	m := directiveRE.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	d := &Directive{Kind: DirectiveKind(m[1]), Pos: pos}
	rest := strings.TrimSpace(m[2])
	head, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "-- "))
	switch d.Kind {
	case DirAllow:
		if !nameListRE.MatchString(head) {
			d.malformed = "allow directive needs a comma-separated analyzer list"
			return d
		}
		d.Analyzers = strings.Split(head, ",")
		d.Reason = reason
	case DirSecret:
		if !nameListRE.MatchString(head) {
			d.malformed = "secret directive needs a comma-separated list of the secret declaration names"
			return d
		}
		d.Names = strings.Split(head, ",")
		d.Reason = reason
	case DirLeaky:
		if !channelRE.MatchString(head) {
			d.malformed = "leaky directive needs a channel label (e.g. access-sequence, trip-count, addr)"
			return d
		}
		d.Channel = head
		d.Reason = reason
	default:
		d.malformed = fmt.Sprintf("unknown directive kind %q (want allow, secret, or leaky)", string(d.Kind))
	}
	return d
}

// collectDirectives gathers every //metalint: directive in the
// package's files.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	set := &directiveSet{byFileLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(fset.Position(c.Slash), c.Text)
				if d == nil {
					continue
				}
				set.list = append(set.list, d)
				lines := set.byFileLine[d.Pos.Filename]
				if lines == nil {
					lines = make(map[int][]*Directive)
					set.byFileLine[d.Pos.Filename] = lines
				}
				lines[d.Pos.Line] = append(lines[d.Pos.Line], d)
			}
		}
	}
	return set
}

// covering returns the directives of the given kind covering a
// position: those on the same line or the line directly above.
func (s *directiveSet) covering(kind DirectiveKind, pos token.Position) []*Directive {
	if s == nil {
		return nil
	}
	lines := s.byFileLine[pos.Filename]
	if lines == nil {
		return nil
	}
	var out []*Directive
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.Kind == kind && d.malformed == "" {
				out = append(out, d)
			}
		}
	}
	return out
}

// allowedAt reports whether a finding by the named analyzer at the
// given position is suppressed by an allow directive, marking the
// directive used.
func (p *Package) allowedAt(analyzer string, pos token.Position) bool {
	for _, d := range p.dirs.covering(DirAllow, pos) {
		for _, name := range d.Analyzers {
			if name == analyzer {
				d.Use()
				return true
			}
		}
	}
	return false
}

// LeakyAt returns the leaky directive covering the position, or nil.
// The caller marks it used once it actually covers a tainted site.
func (p *Package) LeakyAt(pos token.Position) *Directive {
	if ds := p.dirs.covering(DirLeaky, pos); len(ds) > 0 {
		return ds[0]
	}
	return nil
}

// SecretDirectives returns the package's secret directives in file
// order.
func (p *Package) SecretDirectives() []*Directive {
	var out []*Directive
	for _, d := range p.dirs.list {
		if d.Kind == DirSecret && d.malformed == "" {
			out = append(out, d)
		}
	}
	return out
}

// Directives returns every directive of the package in file order.
func (p *Package) Directives() []*Directive {
	if p.dirs == nil {
		return nil
	}
	return p.dirs.list
}

// staleDirectives scans the packages for directives that did nothing:
// malformed ones, allows that suppressed no finding, secrets that
// marked no declaration, and leakies that covered no secret-dependent
// site. A directive is only judged stale when the analyzers able to use
// it actually ran (ran holds their names), so running a subset of
// analyzers never produces false staleness.
func staleDirectives(pkgs []*Package, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, d := range pkg.Directives() {
			if isTestFile(d.Pos.Filename) {
				// Test files are invisible to normal metalint runs;
				// directives there answer to the golden tests instead.
				continue
			}
			msg := staleMessage(d, ran)
			if msg == "" {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: "directive",
				Message:  msg,
			})
		}
	}
	return out
}

func staleMessage(d *Directive, ran map[string]bool) string {
	if d.malformed != "" {
		return "malformed //metalint:" + string(d.Kind) + " directive: " + d.malformed
	}
	if d.Used() {
		return ""
	}
	switch d.Kind {
	case DirAllow:
		for _, name := range d.Analyzers {
			if ByName(name) == nil {
				return fmt.Sprintf("//metalint:allow names unknown analyzer %q", name)
			}
		}
		for _, name := range d.Analyzers {
			if ran[name] {
				return fmt.Sprintf("stale //metalint:allow %s — suppresses nothing", strings.Join(d.Analyzers, ","))
			}
		}
	case DirSecret:
		if ran[secretflowName] {
			return fmt.Sprintf("stale //metalint:secret %s — marks no declaration on this or the next line", strings.Join(d.Names, ","))
		}
	case DirLeaky:
		if ran[secretflowName] {
			return fmt.Sprintf("stale //metalint:leaky %s — covers no secret-dependent site", d.Channel)
		}
	}
	return ""
}
