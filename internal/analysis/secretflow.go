package analysis

import (
	"sort"
	"strings"
)

// secretflowName is the registered analyzer name, shared with the
// stale-directive scan (secret and leaky directives belong to it).
const secretflowName = "secretflow"

// SecretFlow is the interprocedural secret-taint analyzer. Secrets are
// declared with //metalint:secret on a variable, field, or parameter
// declaration; every site where a secret may influence control flow or
// memory addressing (branch or switch condition, loop bound, index,
// allocation size, variadic spread) is a finding unless the site
// carries a //metalint:leaky <channel> directive. The leaky sites form
// the leakage contract emitted by `metalint -inventory`.
var SecretFlow = &Analyzer{
	Name: secretflowName,
	Doc: "secret values (//metalint:secret) must not reach branches, loop bounds, " +
		"indexes, allocation sizes, or variadic spreads except at declared " +
		"//metalint:leaky sites, which form the machine-readable leakage contract",
	Match: matchAnyPkg(
		"internal/victim",
		"internal/mpi",
		"internal/jpeg",
		"internal/crypto",
		"internal/core",
	),
	RunProgram: runSecretFlow,
}

func runSecretFlow(pass *ProgramPass) {
	if len(pass.Pkgs) == 0 {
		return
	}
	t := newTracker(pass.Fset, pass.Pkgs)
	if len(t.seeds) == 0 {
		return
	}

	// Phase A: resolve dynamic calls through function-valued variables
	// and fields so the summary fixpoint sees a complete call graph.
	t.funcFlowFixpoint()

	// Phase B: per-function symbolic summaries to a global fixpoint,
	// then one recording pass collecting sinks and hand-offs.
	for round := 0; round < 64; round++ {
		changed := false
		for _, f := range t.funcs {
			if t.analyze(f, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, f := range t.funcs {
		t.analyze(f, true)
	}

	// Phase C: concrete seed propagation with provenance.
	t.propagate()

	// Classify each sink: declared leaky -> inventory, otherwise a
	// diagnostic (unless suppressed by an allow directive).
	for _, sink := range t.sinks {
		reached := t.instSeeds(sink.f, sink.deps)
		if len(reached) == 0 {
			continue
		}
		pkg := sink.f.pkg
		if !pass.Reportable(pkg) {
			continue
		}
		ids := sortedSeedIDsOf(reached)
		primary := ids[0]
		chain := t.chainFor(sink, primary, reached[primary])
		names := make([]string, 0, len(ids))
		seenName := make(map[string]bool)
		for _, id := range ids {
			n := t.seeds[id].name
			if !seenName[n] {
				seenName[n] = true
				names = append(names, n)
			}
		}
		sort.Strings(names)
		symbol := strings.Join(names, ",")

		pos := t.fset.Position(sink.pos)
		if d := pkg.LeakyAt(pos); d != nil {
			d.Use()
			pass.AddLeak(LeakSite{
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Kind:    sink.kind,
				Channel: d.Channel,
				Symbol:  symbol,
				Reason:  d.Reason,
				Chain:   chain,
			})
			continue
		}
		pass.Reportf(pkg, sink.pos,
			"secret-dependent %s on %s: %s — add //metalint:leaky <channel> if this leak is part of the attack model",
			sink.kind, sink.desc, chainString(chain))
	}
}
