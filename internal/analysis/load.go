package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config parameterizes a Loader.
type Config struct {
	// Dir is the root below which packages are resolved: the module
	// root in normal runs, or a GOPATH-src-style root in golden tests.
	Dir string
	// Module is the module path mapping import paths to directories
	// under Dir ("metaleak" -> Dir, "metaleak/internal/sim" ->
	// Dir/internal/sim). Empty means import paths are directory paths
	// relative to Dir — the testdata layout, where a file may import
	// "internal/sim" and get Dir/internal/sim.
	Module string
	// IncludeTests also loads *_test.go files that belong to the
	// package under test. External test packages (package foo_test) are
	// never loaded.
	IncludeTests bool
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-checking problems. Analyzers still run on a
	// package with errors (best effort), but the driver treats any as a
	// failed load: findings on a mistyped tree are not trustworthy.
	TypeErrors []error

	dirs *directiveSet
}

// Loader loads and type-checks packages. It resolves module-internal
// imports itself and defers everything else (the standard library) to
// the source importer, so it needs no compiled export data and no
// modules outside the repository.
type Loader struct {
	cfg  Config
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader builds a loader for the tree rooted at cfg.Dir.
func NewLoader(cfg Config) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		cfg:  cfg,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*loadEntry),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns ("./...", "./internal/sim", "internal/sim")
// and returns the matched packages sorted by import path. Directories
// without buildable Go files are skipped during "..." expansion and are
// an error when named explicitly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == "":
			walked, err := l.walk(l.cfg.Dir)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.cfg.Dir, strings.TrimSuffix(pat, "/..."))
			walked, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			dir := filepath.Join(l.cfg.Dir, pat)
			names, err := l.goFiles(dir)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, dir)
			}
			add(dir)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walk returns every directory under root holding buildable Go files,
// skipping hidden directories, testdata, and vendor.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	var visit func(dir string) error
	visit = func(dir string) error {
		names, err := l.goFiles(dir)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, dir)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			name := e.Name()
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				continue
			}
			if err := visit(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(root); err != nil {
		return nil, err
	}
	return dirs, nil
}

// goFiles lists the buildable Go file names of a directory under the
// loader's test-inclusion policy.
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	hasNonTest := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			if !l.cfg.IncludeTests {
				continue
			}
		} else {
			hasNonTest = true
		}
		names = append(names, name)
	}
	// A directory holding only test files is not a (non-test) package.
	if !hasNonTest {
		return nil, nil
	}
	return names, nil
}

// importPathFor derives a package's import path from its directory.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.cfg.Dir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if l.cfg.Module == "" {
			return "", fmt.Errorf("cannot load the root directory without a module path")
		}
		return l.cfg.Module, nil
	case strings.HasPrefix(rel, ".."):
		return "", fmt.Errorf("directory %s is outside the load root %s", dir, l.cfg.Dir)
	case l.cfg.Module == "":
		return rel, nil
	default:
		return l.cfg.Module + "/" + rel, nil
	}
}

// dirForImport maps an import path to a directory under the root, or ""
// if the path does not belong to the tree.
func (l *Loader) dirForImport(path string) string {
	if l.cfg.Module != "" {
		if path == l.cfg.Module {
			return l.cfg.Dir
		}
		if rest, ok := strings.CutPrefix(path, l.cfg.Module+"/"); ok {
			return filepath.Join(l.cfg.Dir, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.cfg.Dir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the tree; everything else goes to the standard-library source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d := l.dirForImport(path); d != "" {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if from, ok := l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.pkgs[path] = entry
	pkg, err := l.parseAndCheck(dir, path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) parseAndCheck(dir, path string) (*Package, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if buildIgnored(f) {
			continue
		}
		if pkgName == "" && !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	// Drop files of a different package (external _test packages).
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  pkgName,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
		dirs: collectDirectives(l.fset, files),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check reports the first hard error through conf.Error too; the
	// returned package is kept regardless for best-effort analysis.
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	return pkg, nil
}

// buildIgnored reports whether the file carries a "//go:build ignore"
// (or legacy "// +build ignore") constraint before its package clause.
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
			if strings.HasPrefix(text, "// +build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// FirstTypeErrors formats up to max type errors across the packages.
func FirstTypeErrors(pkgs []*Package, max int) []string {
	var out []string
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			if len(out) >= max {
				return out
			}
			out = append(out, e.Error())
		}
	}
	return out
}
