package analysis

import (
	"go/ast"
	"go/types"
)

// FloatCycles forbids converting a non-constant floating-point
// expression to arch.Cycles. Cycle accounting is exact integer
// arithmetic; a float detour introduces rounding whose result can
// depend on evaluation order and optimization level, breaking the
// bit-for-bit reproducibility of latency traces. Scale factors must be
// expressed as integer ratios (x*3/2, not Cycles(float64(x)*1.5));
// constant conversions (Cycles(1.5e3)) are evaluated exactly by the
// compiler and stay legal.
var FloatCycles = &Analyzer{
	Name: "floatcycles",
	Doc: "forbid non-constant floating-point expressions converted to " +
		"arch.Cycles: cycle accounting must stay in exact integer arithmetic",
	Run: runFloatCycles,
}

func runFloatCycles(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			funTV, ok := pass.Pkg.Info.Types[unparen(call.Fun)]
			if !ok || !funTV.IsType() || !isCyclesType(funTV.Type) {
				return true
			}
			arg := unparen(call.Args[0])
			argTV, ok := pass.Pkg.Info.Types[arg]
			if !ok || argTV.Value != nil { // constant: exact, compiler-evaluated
				return true
			}
			if !isFloat(argTV.Type) {
				return true
			}
			pass.Reportf(call.Pos(),
				"floating-point expression %s converted to arch.Cycles: express the scale as an integer ratio to keep cycle accounting exact",
				types.ExprString(arg))
			return true
		})
	}
}
