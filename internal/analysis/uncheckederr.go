package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UncheckedErr flags ignored error results from the frame-placement
// primitives — sim.(*System).AllocFrame and core.(*Attacker).ClaimFrame
// — whether as a bare call statement or a blank-assigned result. These
// calls fail routinely by design (the frame is owned, or out of range):
// an attack that drops the error proceeds with an unconstructed eviction
// set or monitor and measures noise that looks like a real result. A
// placement whose failure is genuinely acceptable must say so:
//
//	//metalint:allow uncheckederr probing ownership, failure expected
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc: "flag ignored error results of sim.AllocFrame and core.ClaimFrame " +
		"(bare or _-assigned calls): a silently failed frame claim leaves the " +
		"attack primitives unconstructed and downstream measurements meaningless",
	Run: runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					checkDroppedFrameErr(pass, call, call.Pos())
				}
			case *ast.DeferStmt:
				checkDroppedFrameErr(pass, n.Call, n.Call.Pos())
			case *ast.GoStmt:
				checkDroppedFrameErr(pass, n.Call, n.Call.Pos())
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) || !isBlank(n.Lhs[i]) {
						continue
					}
					if call, ok := unparen(rhs).(*ast.CallExpr); ok {
						checkDroppedFrameErr(pass, call, n.Lhs[i].Pos())
					}
				}
			}
			return true
		})
	}
}

// checkDroppedFrameErr reports pos when the call is a frame-placement
// primitive whose error result is being discarded.
func checkDroppedFrameErr(pass *Pass, call *ast.CallExpr, pos token.Pos) {
	name, ok := frameAllocCallee(pass.Pkg.Info, call)
	if !ok {
		return
	}
	pass.Reportf(pos,
		"error result of %s is ignored: a failed frame claim leaves the attack unconstructed; handle the error or annotate //metalint:allow uncheckederr",
		name)
}

// frameAllocCallee resolves the call's target and reports whether it is
// one of the guarded frame-placement primitives: a function named
// AllocFrame declared in internal/sim, or ClaimFrame in internal/core.
// Matching by package path suffix lets the golden-test stubs under
// testdata stand in for the metaleak packages.
func frameAllocCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := callee(info, call).(*types.Func)
	if !ok {
		return "", false
	}
	switch {
	case fn.Name() == "AllocFrame" && objFromPackage(fn, "internal/sim"):
	case fn.Name() == "ClaimFrame" && objFromPackage(fn, "internal/core"):
	default:
		return "", false
	}
	// Only error-returning signatures are in scope (a stub or future
	// overload without the error result has nothing to drop).
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Results().Len() == 0 {
		return "", false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return fn.FullName(), true
		}
	}
	return "", false
}
