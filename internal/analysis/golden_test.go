package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden runs each analyzer over its purpose-built package tree
// under testdata/src/<name> and compares the exact diagnostics against
// testdata/<name>.golden. Every fixture must produce at least one true
// positive and exercise the allow directive at least once, so both
// sides of each invariant stay pinned.
func TestGolden(t *testing.T) {
	for _, a := range All {
		t.Run(a.Name, func(t *testing.T) {
			root, err := filepath.Abs(filepath.Join("testdata", "src", a.Name))
			if err != nil {
				t.Fatal(err)
			}
			loader := NewLoader(Config{Dir: root, IncludeTests: true})
			pkgs, err := loader.Load("./...")
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if errs := FirstTypeErrors(pkgs, 5); len(errs) > 0 {
				t.Fatalf("fixture does not type-check: %v", errs)
			}

			res := Run(pkgs, []*Analyzer{a})
			res.Relativize(root)
			var sb strings.Builder
			if err := res.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			got := sb.String()

			if len(res.Diagnostics) == 0 {
				t.Error("fixture produced no diagnostics; each analyzer needs a true positive")
			}
			if res.Suppressed == 0 {
				t.Error("fixture suppressed no findings; each analyzer needs an allow-directive case")
			}

			goldenPath := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/analysis -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRegistry pins the analyzer set: names must be unique (they key
// allow directives) and every analyzer documented.
func TestRegistry(t *testing.T) {
	if len(All) < 5 {
		t.Fatalf("expected at least 5 analyzers, have %d", len(All))
	}
	seen := make(map[string]bool)
	for _, a := range All {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incompletely defined", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("no-such-analyzer") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}
