package analysis

import (
	"go/ast"
	"go/types"
)

// SeedPlumbing forbids seeding arch.NewRNG with a compile-time
// constant outside test files. Every RNG stream in the simulator must
// be steerable from the experiment configuration: a literal seed
// produces the same draws in every cell of a sweep, silently
// correlating trials that the harness treats as independent, and makes
// `-seed N` a lie for whatever that RNG drives. The seed argument must
// be plumbed from a Config/DesignPoint seed (possibly XORed or
// stream-split); constant *stream keys* in the variadic tail are fine —
// they are domain-separation tags, not entropy.
var SeedPlumbing = &Analyzer{
	Name: "seedplumbing",
	Doc: "forbid constant seeds to arch.NewRNG outside tests: seeds must " +
		"derive from the experiment Config/DesignPoint so every stochastic " +
		"stream is steered by -seed and decorrelated across sweep cells",
	Run: runSeedPlumbing,
}

func runSeedPlumbing(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(f.Package).Filename
		if isTestFile(filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isNewRNG(info, call) {
				return true
			}
			seed := unparen(call.Args[0])
			if tv, ok := info.Types[seed]; ok && tv.Value != nil {
				pass.Reportf(seed.Pos(),
					"arch.NewRNG seeded with the constant %s: derive the seed from the "+
						"experiment's Config/DesignPoint seed so the stream is steerable and "+
						"uncorrelated across sweep cells", tv.Value)
			}
			return true
		})
	}
}

// isNewRNG reports whether the call invokes the function NewRNG
// declared in a package named arch. Matching by package name rather
// than full import path lets the golden-test stub under testdata stand
// in for metaleak/internal/arch (mirroring isCyclesType).
func isNewRNG(info *types.Info, call *ast.CallExpr) bool {
	obj := callee(info, call)
	if obj == nil || obj.Name() != "NewRNG" {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "arch"
}
