package analysis

import (
	"go/ast"
	"go/types"
)

// cycleAccountedPkgs are the packages whose functions return latency
// values that callers are expected to fold into cycle accounting.
var cycleAccountedPkgs = []string{
	"internal/sim",
	"internal/cache",
	"internal/dram",
	"internal/itree",
	"internal/ctr",
}

// CycleLeak flags calls in the cycle-accounted packages whose
// arch.Cycles result is discarded — either a bare call statement or a
// blank-assigned result. A dropped latency silently deletes time from
// the simulation: the access happened, state changed, but the clock
// never advanced, skewing every downstream timing measurement. A call
// whose latency is intentionally irrelevant must say so:
//
//	//metalint:allow cycleleak warm-up access, latency folded in later
var CycleLeak = &Analyzer{
	Name: "cycleleak",
	Doc: "flag discarded arch.Cycles results (bare or _-assigned calls) in " +
		"internal/sim, internal/cache, internal/dram, internal/itree, and " +
		"internal/ctr: dropped latencies silently corrupt cycle accounting",
	Match: matchAnyPkg(cycleAccountedPkgs...),
	Run:   runCycleLeak,
}

func runCycleLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
}

// checkDiscardedCall reports a statement-position call that returns one
// or more arch.Cycles values (all of which are necessarily dropped).
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	if isConversion(pass.Pkg.Info, call) {
		return
	}
	t := pass.Pkg.Info.TypeOf(call)
	if t == nil {
		return
	}
	if !resultHasCycles(t) {
		return
	}
	pass.Reportf(call.Pos(),
		"result of %s includes arch.Cycles but the call discards it: account the latency or annotate //metalint:allow cycleleak",
		callName(pass.Pkg.Info, call))
}

// checkBlankAssign reports arch.Cycles results assigned to the blank
// identifier.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	// Multi-value form: v, _ := f()
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || isConversion(pass.Pkg.Info, call) {
			return
		}
		tuple, ok := pass.Pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if isBlank(as.Lhs[i]) && isCyclesType(tuple.At(i).Type()) {
				pass.Reportf(as.Lhs[i].Pos(),
					"arch.Cycles result %d of %s assigned to _: account the latency or annotate //metalint:allow cycleleak",
					i, callName(pass.Pkg.Info, call))
			}
		}
		return
	}
	// Paired form: _ = f(), _, _ = f(), g()
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || isConversion(pass.Pkg.Info, call) {
			continue
		}
		t := pass.Pkg.Info.TypeOf(call)
		if t != nil && isCyclesType(t) {
			pass.Reportf(as.Lhs[i].Pos(),
				"arch.Cycles result of %s assigned to _: account the latency or annotate //metalint:allow cycleleak",
				callName(pass.Pkg.Info, call))
		}
	}
}

// resultHasCycles reports whether the call result type (single value or
// tuple) contains an arch.Cycles component.
func resultHasCycles(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isCyclesType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isCyclesType(t)
}

// callName renders a readable name for the called function.
func callName(info *types.Info, call *ast.CallExpr) string {
	if obj := callee(info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			return fn.FullName()
		}
		return obj.Name()
	}
	return types.ExprString(call.Fun)
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
