package analysis

import (
	"go/ast"
	"strconv"
)

// GlobalRand forbids math/rand (and math/rand/v2) outside test files.
// The global generators are process-seeded: two runs of the same
// experiment draw different streams, so every stochastic component of
// the simulator must instead draw from metaleak/internal/arch.RNG,
// seeded from the experiment configuration.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand outside tests: stochastic simulator components " +
		"must use the seeded, deterministic arch.RNG so identical seeds give " +
		"identical experiments",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(f.Package).Filename
		if isTestFile(filename) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: use the seeded arch.RNG (metaleak/internal/arch) so experiments are reproducible",
					path)
			}
		}
		// Catch uses that slip past import inspection (dot imports).
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
				if _, isSel := pass.parentIsSelector(f, id); isSel {
					return true // already covered by the import diagnostic
				}
				pass.Reportf(id.Pos(), "use of %s.%s: use the seeded arch.RNG instead", p, obj.Name())
			}
			return true
		})
	}
}

// parentIsSelector reports whether the identifier is the Sel of a
// selector expression rooted at a package name (rand.Intn). Those uses
// are already implied by the flagged import; only unqualified uses (dot
// imports) need their own diagnostic.
func (p *Pass) parentIsSelector(f *ast.File, id *ast.Ident) (ast.Node, bool) {
	var parent ast.Node
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel == id {
			parent, found = sel, true
			return false
		}
		return true
	})
	return parent, found
}
