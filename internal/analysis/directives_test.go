package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

func TestParseDirective(t *testing.T) {
	pos := token.Position{Filename: "f.go", Line: 10, Column: 1}
	cases := []struct {
		text      string
		kind      DirectiveKind
		analyzers []string
		names     []string
		channel   string
		reason    string
		malformed bool
		nil_      bool
	}{
		{text: "// ordinary comment", nil_: true},
		{text: "//metalint: allow wallclock", nil_: true}, // space before kind: not a directive
		{text: "//metalint:allow wallclock", kind: DirAllow, analyzers: []string{"wallclock"}},
		{
			text:      "//metalint:allow wallclock,maporder two analyzers, one excuse",
			kind:      DirAllow,
			analyzers: []string{"wallclock", "maporder"},
			reason:    "two analyzers, one excuse",
		},
		{
			text:   "//metalint:secret p,q -- RSA factors",
			kind:   DirSecret,
			names:  []string{"p", "q"},
			reason: "RSA factors",
		},
		{
			text:    "//metalint:leaky trip-count loop runs per key bit",
			kind:    DirLeaky,
			channel: "trip-count",
			reason:  "loop runs per key bit",
		},
		{text: "//metalint:allow", kind: DirAllow, malformed: true},
		{text: "//metalint:secret", kind: DirSecret, malformed: true},
		{text: "//metalint:leaky UPPER bad channel", kind: DirLeaky, malformed: true},
		{text: "//metalint:frobnicate x", kind: "frobnicate", malformed: true},
	}
	for _, tc := range cases {
		d := parseDirective(pos, tc.text)
		if tc.nil_ {
			if d != nil {
				t.Errorf("%q: expected nil, got %+v", tc.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("%q: expected a directive, got nil", tc.text)
			continue
		}
		if d.Kind != tc.kind {
			t.Errorf("%q: kind = %q, want %q", tc.text, d.Kind, tc.kind)
		}
		if (d.malformed != "") != tc.malformed {
			t.Errorf("%q: malformed = %q, want malformed=%v", tc.text, d.malformed, tc.malformed)
		}
		if tc.malformed {
			continue
		}
		if got, want := len(d.Analyzers), len(tc.analyzers); got != want {
			t.Errorf("%q: %d analyzers, want %d", tc.text, got, want)
		} else {
			for i := range tc.analyzers {
				if d.Analyzers[i] != tc.analyzers[i] {
					t.Errorf("%q: analyzer[%d] = %q, want %q", tc.text, i, d.Analyzers[i], tc.analyzers[i])
				}
			}
		}
		if got, want := len(d.Names), len(tc.names); got != want {
			t.Errorf("%q: %d names, want %d", tc.text, got, want)
		}
		if d.Channel != tc.channel {
			t.Errorf("%q: channel = %q, want %q", tc.text, d.Channel, tc.channel)
		}
		if d.Reason != tc.reason {
			t.Errorf("%q: reason = %q, want %q", tc.text, d.Reason, tc.reason)
		}
	}
}

// TestDirectiveCoversMultiLineStatement pins the coverage rule for
// statements spanning several lines: the directive on the line above
// the statement covers positions on the statement's first line (where
// sinks and findings are anchored), and nothing deeper inside it.
func TestDirectiveCoversMultiLineStatement(t *testing.T) {
	const src = `package p

func f(a, b int) int {
	//metalint:leaky branch-skew condition spans three lines
	if a > 0 &&
		b > 0 &&
		a != b {
		return 1
	}
	return 0
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	set := collectDirectives(fset, []*ast.File{file})
	if len(set.list) != 1 {
		t.Fatalf("expected 1 directive, got %d", len(set.list))
	}
	at := func(line int) []*Directive {
		return set.covering(DirLeaky, token.Position{Filename: "f.go", Line: line})
	}
	if len(at(5)) != 1 { // the if-statement's first line
		t.Error("directive on line 4 must cover the statement starting on line 5")
	}
	if len(at(4)) != 1 { // the directive's own line
		t.Error("directive must cover its own line (trailing-comment form)")
	}
	if len(at(6)) != 0 || len(at(7)) != 0 {
		t.Error("directive must not cover continuation lines of the statement")
	}
}

// TestMultiAnalyzerAllow pins that one allow directive can silence
// several analyzers and that allowedAt marks it used for staleness.
func TestMultiAnalyzerAllow(t *testing.T) {
	const src = `package p

func f() {
	//metalint:allow wallclock,globalrand shared excuse
	_ = 1
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{dirs: collectDirectives(fset, []*ast.File{file})}
	pos := token.Position{Filename: "f.go", Line: 5}
	if !pkg.allowedAt("wallclock", pos) {
		t.Error("first listed analyzer not suppressed")
	}
	if !pkg.allowedAt("globalrand", pos) {
		t.Error("second listed analyzer not suppressed")
	}
	if pkg.allowedAt("maporder", pos) {
		t.Error("unlisted analyzer must not be suppressed")
	}
	d := pkg.dirs.list[0]
	if !d.Used() {
		t.Error("suppressing a finding must mark the directive used")
	}
}

// TestRelativizeDotDotSegment is the regression test for Relativize
// mishandling files whose relative path legitimately starts with a
// ".."-named segment: only true parent-directory escapes may keep
// their absolute path.
func TestRelativizeDotDotSegment(t *testing.T) {
	base := filepath.Join(string(filepath.Separator), "work", "repo")
	inside := filepath.Join(base, "..weird", "a.go")
	outside := filepath.Join(string(filepath.Separator), "work", "other", "a.go")
	parent := filepath.Join(string(filepath.Separator), "work")

	if got, want := relativize(base, inside), "..weird/a.go"; got != want {
		t.Errorf("relativize(inside ..weird dir) = %q, want %q", got, want)
	}
	if got := relativize(base, outside); got != outside {
		t.Errorf("relativize(outside) = %q, want unchanged %q", got, outside)
	}
	if got := relativize(base, parent); got != parent {
		t.Errorf("relativize(parent dir itself) = %q, want unchanged %q", got, parent)
	}

	res := Result{
		Diagnostics: []Diagnostic{{File: inside}},
		Stale:       []Diagnostic{{File: outside}},
		Inventory: []LeakSite{{
			File:  inside,
			Chain: []ChainStep{{File: inside}, {File: outside}},
		}},
	}
	res.Relativize(base)
	if res.Diagnostics[0].File != "..weird/a.go" {
		t.Errorf("diagnostic not relativized: %q", res.Diagnostics[0].File)
	}
	if res.Stale[0].File != outside {
		t.Errorf("outside stale path must stay absolute: %q", res.Stale[0].File)
	}
	if res.Inventory[0].File != "..weird/a.go" || res.Inventory[0].Chain[0].File != "..weird/a.go" {
		t.Errorf("inventory paths not relativized: %+v", res.Inventory[0])
	}
	if res.Inventory[0].Chain[1].File != outside {
		t.Errorf("outside chain path must stay absolute: %q", res.Inventory[0].Chain[1].File)
	}
}
