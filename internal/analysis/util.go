package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// callee resolves the object a call expression invokes: a package-level
// function, a method, or a builtin. It returns nil for dynamic calls
// (function values, interface methods resolve to the interface method
// object) and for conversions.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[unparen(call.Fun)]
	return ok && tv.IsType()
}

// isCyclesType reports whether t is the simulator's cycle-count type:
// the named type Cycles declared in a package named arch. Matching by
// package name rather than full import path lets the golden-test stubs
// under testdata stand in for metaleak/internal/arch.
func isCyclesType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cycles" && obj.Pkg() != nil && obj.Pkg().Name() == "arch"
}

// isFloat reports whether t's underlying type is a floating-point type
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// objFromPackage reports whether obj is declared in a package whose
// import path is, or ends with, one of the given segment suffixes.
func objFromPackage(obj types.Object, segs ...string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for _, s := range segs {
		if pathHasSuffixSegment(path, s) {
			return true
		}
	}
	return false
}
