package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSecretflowFixture runs the secretflow analyzer over its fixture
// tree and returns the result, relativized to the fixture root.
func loadSecretflowFixture(t *testing.T) Result {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "secretflow"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(Config{Dir: root, IncludeTests: true})
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if errs := FirstTypeErrors(pkgs, 5); len(errs) > 0 {
		t.Fatalf("fixture does not type-check: %v", errs)
	}
	res := Run(pkgs, []*Analyzer{SecretFlow})
	res.Relativize(root)
	return res
}

// TestSecretflowInventory pins the machine-readable leakage inventory
// emitted for the fixture: every leaky-annotated, genuinely tainted
// site appears with its kind, channel, symbol, and seed-to-sink chain.
func TestSecretflowInventory(t *testing.T) {
	res := loadSecretflowFixture(t)

	var sb strings.Builder
	if err := res.WriteInventory(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "secretflow-inventory.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing inventory golden (run `go test ./internal/analysis -run TestSecretflow -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("inventory mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	kinds := make(map[string]int)
	for _, site := range res.Inventory {
		kinds[site.Kind]++
		if site.Symbol == "" {
			t.Errorf("site %s:%d has no tainted symbol", site.File, site.Line)
		}
		if site.Channel == "" {
			t.Errorf("site %s:%d has no channel label", site.File, site.Line)
		}
		if len(site.Chain) < 2 {
			t.Errorf("site %s:%d chain too short: %+v", site.File, site.Line, site.Chain)
		}
	}
	for _, kind := range []string{"branch", "loop-bound", "index", "alloc", "spread"} {
		if kinds[kind] == 0 {
			t.Errorf("inventory covers no %q site; the fixture must exercise every sink kind", kind)
		}
	}
}

// TestSecretflowInterproceduralChain pins the tentpole acceptance
// criterion: the planted branch inside shape (reachable only through
// the Hooks.Emit function-valued field) is flagged, and its taint
// chain spans at least two interprocedural hops.
func TestSecretflowInterproceduralChain(t *testing.T) {
	res := loadSecretflowFixture(t)

	var found bool
	for _, d := range res.Diagnostics {
		if !strings.Contains(d.Message, "v > 128") {
			continue
		}
		found = true
		// The chain must name the seed, the hand-off into shape (the
		// function stored in the Emit field), and the sink.
		for _, part := range []string{"secret Key", "arg v to victim.shape", "branch"} {
			if !strings.Contains(d.Message, part) {
				t.Errorf("chain missing %q in %q", part, d.Message)
			}
		}
	}
	if !found {
		t.Fatalf("planted branch through the function-valued field was not flagged; diagnostics: %v", res.Diagnostics)
	}

	for _, d := range res.Diagnostics {
		if strings.Contains(d.File, "harness") {
			t.Errorf("finding reported outside the analyzer's Match scope: %v", d)
		}
	}
	if res.Suppressed == 0 {
		t.Error("the allow-directive case in Debug was not suppressed")
	}
}

// TestSecretflowStaleDirectives pins the stale-directive scan: unused
// secret/leaky/allow directives and malformed or unknown-analyzer
// directives are warned about, while every used directive is not.
func TestSecretflowStaleDirectives(t *testing.T) {
	res := loadSecretflowFixture(t)

	wantSubstrings := []string{
		`stale //metalint:secret Ghost`,
		`stale //metalint:leaky addr`,
		`unknown analyzer "nosuchanalyzer"`,
		`malformed //metalint:allow`,
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range res.Stale {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing stale warning containing %q; have %v", want, res.Stale)
		}
	}
	if len(res.Stale) != len(wantSubstrings) {
		t.Errorf("want exactly %d stale warnings, got %d: %v", len(wantSubstrings), len(res.Stale), res.Stale)
	}
}
