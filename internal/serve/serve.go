// Package serve implements the metaleak sweep service: a persistent
// HTTP/JSON front-end over the dispatch coordinator. Clients submit
// sweep specs, poll status, and stream rows as they settle; a
// supervised local worker fleet computes cells, and external
// `metaleak worker -connect` processes can attach to (and detach from)
// the active sweep's worker listener at any time.
//
// Two stores make the service self-healing rather than merely
// restartable:
//
//   - Per-sweep checkpoints (StateDir/sweeps/<fingerprint>.jsonl):
//     a sweep interrupted by a drain or a crash resumes from its
//     settled rows on resubmission.
//   - A content-addressed result cache (StateDir/cellcache.jsonl):
//     every clean cell row is stored under a key covering exactly what
//     determines it — so identical cells across *overlapping* sweeps
//     (more reps, another client's grid) compute once, ever.
//
// Robustness is layered per DESIGN.md §12: the supervisor respawns
// dead local workers with exponential backoff, respawned workers
// re-dial with bounded retry, the coordinator absorbs their revoked
// leases against a revive budget (no attempt-count scars), and
// re-leases of genuinely failed cells are paced by the same backoff
// curve. Distribution stays pure scheduling: a served sweep's rows are
// byte-identical to `metaleak sweep -par N` at the same seed.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"metaleak/internal/dispatch"
	"metaleak/internal/experiments"
	"metaleak/internal/runner"
)

// Sweep lifecycle states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted" // drained mid-run; checkpointed, resumable
)

// Config parameterizes a Server.
type Config struct {
	// Token is the shared secret for both surfaces: HTTP clients present
	// it as `Authorization: Bearer <token>`, workers present it in the
	// dispatch hello. Empty disables auth on both (loopback use).
	Token string
	// StateDir holds the service's durable state: the cell cache at
	// cellcache.jsonl and per-sweep checkpoints under sweeps/.
	StateDir string
	// CacheMaxBytes caps the cell cache's footprint: past it, the
	// oldest entries are evicted (they recompute on next use) and the
	// file compacts. 0 leaves the cache unbounded.
	CacheMaxBytes int64
	// WorkerAddr is the TCP address the per-sweep worker listener binds;
	// empty selects loopback with an ephemeral port. The active sweep's
	// resolved address is published in /v1/status for external workers.
	WorkerAddr string
	// Workers is the supervised local fleet size; 0 runs no local
	// workers (external attach only).
	Workers int
	// SpawnWorker runs one worker process (or goroutine) connected to
	// addr until it exits; the supervisor calls it once per slot and
	// again, after backoff, each time it dies. Required when Workers > 0.
	SpawnWorker func(ctx context.Context, slot, attempt int, addr string) error
	// LeaseTimeout, Retries, Revive, TrialTimeout mirror the sweep
	// flags of the same names (dispatch lease silence bound, per-cell
	// retry budget, per-cell revocation absorption budget, per-attempt
	// deadline).
	LeaseTimeout time.Duration
	Retries      int
	Revive       int
	TrialTimeout time.Duration
	// Log, when non-nil, receives human-readable progress warnings.
	Log func(format string, args ...any)
}

// sweepRun is one submitted sweep's record.
type sweepRun struct {
	ID    string
	FP    string // grid fingerprint; the dedup and checkpoint key
	Axes  experiments.SweepAxes
	State string

	// live collects rows in arrival order (cache-served first, then
	// completion order) for streaming; final is the grid-ordered result
	// set, present once the run leaves StateRunning.
	live  []experiments.SweepRow
	final []experiments.SweepRow

	Cached      int // rows served without computing (checkpoint or cell cache)
	Computed    int // rows settled by workers this run
	Quarantined int
	Err         string
}

// Status is one sweep's client-facing progress document.
type Status struct {
	ID          string
	Fingerprint string
	State       string
	Cells       int
	Settled     int
	Cached      int
	Computed    int
	Quarantined int
	Err         string `json:",omitempty"`
}

// Server is the sweep service: an HTTP handler plus a run loop that
// executes queued sweeps one at a time over a supervised worker fleet.
type Server struct {
	cfg   Config
	cache *experiments.ResultCache

	mu         sync.Mutex
	cond       *sync.Cond // broadcast on any row, state change, or drain
	sweeps     map[string]*sweepRun
	order      []string            // submission order; /v1/status iterates this, never the map
	byFP       map[string]*sweepRun // queued/running dedup
	nextID     int
	workerAddr string // active sweep's listener address, "" when idle
	draining   bool

	work chan struct{} // wakes the run loop on submission
}

// New opens the service state under cfg.StateDir and returns a Server
// ready to Run. A torn trailing cache line (crash signature) is
// salvaged and logged, never fatal.
func New(cfg Config) (*Server, error) {
	if cfg.Workers > 0 && cfg.SpawnWorker == nil {
		return nil, errors.New("serve: Workers > 0 requires a SpawnWorker hook")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("serve: StateDir is required")
	}
	if cfg.WorkerAddr == "" {
		cfg.WorkerAddr = "127.0.0.1:0"
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "sweeps"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cache, err := experiments.OpenResultCacheCap(filepath.Join(cfg.StateDir, "cellcache.jsonl"), cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	if n := cache.Evictions(); n > 0 && cfg.Log != nil {
		cfg.Log("serve: cell cache: over the %d-byte cap at open, evicted the %d oldest entries", cfg.CacheMaxBytes, n)
	}
	if torn := cache.Discarded(); torn != "" && cfg.Log != nil {
		cfg.Log("serve: cell cache: salvaged a torn trailing line (%d bytes discarded)", len(torn))
	}
	s := &Server{
		cfg:    cfg,
		cache:  cache,
		sweeps: map[string]*sweepRun{},
		byFP:   map[string]*sweepRun{},
		work:   make(chan struct{}, 1),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Cache exposes the cell cache (tests and diagnostics).
func (s *Server) Cache() *experiments.ResultCache { return s.cache }

// Run executes queued sweeps until ctx is cancelled, then drains: the
// active sweep's settled rows are already checkpointed (every row is
// appended as it settles), the run is marked interrupted, still-queued
// sweeps stay queued, and the cache is closed. It always returns nil
// after a clean drain.
func (s *Server) Run(ctx context.Context) error {
	// Flip the draining flag the instant the signal lands, not when the
	// active sweep finishes — submissions are refused immediately and
	// /healthz reports the drain.
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
	for {
		r := s.nextQueued()
		if r == nil {
			select {
			case <-ctx.Done():
				return s.cache.Close()
			case <-s.work:
				continue
			}
		}
		s.runOne(ctx, r)
		if ctx.Err() != nil {
			return s.cache.Close()
		}
	}
}

func (s *Server) nextQueued() *sweepRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		if r := s.sweeps[id]; r.State == StateQueued {
			return r
		}
	}
	return nil
}

// Submit enqueues a sweep spec, deduplicating against queued and
// running sweeps by grid fingerprint (the resubmitted spec joins the
// in-flight run instead of queueing a duplicate). It returns the run's
// status and whether an existing run was reused.
func (s *Server) Submit(axes experiments.SweepAxes) (Status, bool, error) {
	if err := axes.Validate(); err != nil {
		return Status{}, false, err
	}
	fp := axes.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Status{}, false, errors.New("serve: draining, not accepting sweeps")
	}
	if r, ok := s.byFP[fp]; ok {
		return s.statusLocked(r), true, nil
	}
	s.nextID++
	r := &sweepRun{
		ID:    fmt.Sprintf("s%d", s.nextID),
		FP:    fp,
		Axes:  axes,
		State: StateQueued,
	}
	s.sweeps[r.ID] = r
	s.order = append(s.order, r.ID)
	s.byFP[fp] = r
	select {
	case s.work <- struct{}{}:
	default:
	}
	return s.statusLocked(r), false, nil
}

// runOne executes one sweep: a fresh worker listener, a supervised
// local fleet dialing it, and SweepDispatch with the service's cache
// and checkpoint plumbed in.
func (s *Server) runOne(ctx context.Context, r *sweepRun) {
	s.mu.Lock()
	r.State = StateRunning
	s.mu.Unlock()
	s.cond.Broadcast()

	finish := func(rows []experiments.SweepRow, state, errMsg string) {
		s.mu.Lock()
		s.workerAddr = ""
		r.final = rows
		r.State = state
		r.Err = errMsg
		delete(s.byFP, r.FP)
		s.mu.Unlock()
		s.cond.Broadcast()
	}

	ln, err := net.Listen("tcp", s.cfg.WorkerAddr)
	if err != nil {
		finish(nil, StateFailed, err.Error())
		return
	}
	addr := ln.Addr().String()
	s.mu.Lock()
	s.workerAddr = addr
	s.mu.Unlock()

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	var supDone chan error
	if s.cfg.Workers > 0 {
		sup := &dispatch.Supervisor{
			Workers: s.cfg.Workers,
			Backoff: runner.ExpBackoff(100 * time.Millisecond),
			Log:     s.cfg.Log,
			Start: func(ctx context.Context, slot, attempt int) error {
				return s.cfg.SpawnWorker(ctx, slot, attempt, addr)
			},
		}
		supDone = make(chan error, 1)
		go func() { supDone <- sup.Run(fctx) }()
	}

	opts := experiments.SweepOptions{
		Checkpoint: filepath.Join(s.cfg.StateDir, "sweeps", r.FP+".jsonl"),
		Timeout:    s.cfg.TrialTimeout,
		Retries:    s.cfg.Retries,
		Log:        s.cfg.Log,
	}
	dopts := experiments.DispatchOptions{
		LeaseTimeout: s.cfg.LeaseTimeout,
		Token:        s.cfg.Token,
		Revive:       s.cfg.Revive,
		RetryBackoff: runner.ExpBackoff(100 * time.Millisecond),
		Cache:        s.cache,
		OnRow: func(row experiments.SweepRow, cached bool) {
			s.mu.Lock()
			r.live = append(r.live, row)
			if cached {
				r.Cached++
			} else {
				r.Computed++
			}
			if row.Quarantined {
				r.Quarantined++
			}
			s.mu.Unlock()
			s.cond.Broadcast()
		},
	}
	rows, err := experiments.SweepDispatch(ctx, r.Axes, opts, dopts, ln)
	fcancel() // release worker slots mid-respawn; drained slots already exited
	if supDone != nil {
		if serr := <-supDone; serr != nil && err == nil {
			err = serr
		}
	}
	switch {
	case err == nil:
		finish(rows, StateDone, "")
	case errors.Is(err, context.Canceled):
		finish(rows, StateInterrupted,
			fmt.Sprintf("drained mid-run: %d of %d cells checkpointed; resubmit to resume", len(rows), len(r.Axes.Cells())))
	default:
		finish(rows, StateFailed, err.Error())
	}
}

// statusLocked renders a run's Status; s.mu must be held.
func (s *Server) statusLocked(r *sweepRun) Status {
	return Status{
		ID:          r.ID,
		Fingerprint: r.FP,
		State:       r.State,
		Cells:       len(r.Axes.Cells()),
		Settled:     len(r.live),
		Cached:      r.Cached,
		Computed:    r.Computed,
		Quarantined: r.Quarantined,
		Err:         r.Err,
	}
}

// get looks a run up by ID.
func (s *Server) get(id string) (*sweepRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.sweeps[id]
	return r, ok
}

// waitDone blocks until the run leaves queued/running or ctx ends,
// returning the final grid-ordered rows and terminal state.
func (s *Server) waitDone(ctx context.Context, r *sweepRun) ([]experiments.SweepRow, string, error) {
	// A cond has no context hook; bridge via a broadcast on ctx end.
	stop := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for r.State == StateQueued || r.State == StateRunning {
		if ctx.Err() != nil {
			return nil, r.State, ctx.Err()
		}
		s.cond.Wait()
	}
	return r.final, r.State, nil
}
