package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/dispatch"
	"metaleak/internal/experiments"
	"metaleak/internal/runner"
)

const testToken = "s3cret-test-token"

// newTestServer builds a Server with an in-process supervised fleet
// (worker goroutines speaking the real wire protocol over loopback),
// starts its run loop and an httptest front-end, and tears everything
// down with the test.
func newTestServer(t *testing.T, workers int) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	cfg := Config{
		Token:    testToken,
		StateDir: t.TempDir(),
		Workers:  workers,
		Retries:  1,
		Revive:   8,
		Log:      t.Logf,
		SpawnWorker: func(ctx context.Context, slot, attempt int, addr string) error {
			conn, err := dispatch.DialRetry(ctx, addr, 5, runner.ExpBackoff(5*time.Millisecond))
			if err != nil {
				return err
			}
			w := &dispatch.Worker{
				ID:        fmt.Sprintf("t-%d-%d", slot, attempt),
				Heartbeat: 50 * time.Millisecond,
				Token:     testToken,
				Init:      experiments.NewSweepSession,
			}
			return w.Run(ctx, conn)
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("run loop: %v", err)
		}
	})
	return s, hs, cancel
}

func testAxes(seeds int) experiments.SweepAxes {
	return experiments.SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     seeds,
		Seed:      31,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}
}

// request performs one authenticated call against the test server.
func request(t *testing.T, hs *httptest.Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, hs.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeLifecycle: submit, wait, fetch — the CSV, long CSV, and
// JSON documents a served sweep renders are byte-identical to the
// CLI's own rendering of the same grid, and auth guards every /v1
// route while /healthz stays open.
func TestServeLifecycle(t *testing.T) {
	_, hs, _ := newTestServer(t, 2)
	axes := testAxes(2)

	// Auth: no token → 401 on /v1, 200 on /healthz.
	if resp, err := hs.Client().Get(hs.URL + "/v1/status"); err != nil || resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/status: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := hs.Client().Get(hs.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	resp, body := request(t, hs, "POST", "/v1/sweeps", axes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var sub struct {
		Status
		Reused bool
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Reused || sub.Cells != 2 {
		t.Fatalf("submit status: %+v", sub)
	}

	want, err := experiments.SweepOpts(context.Background(), axes, experiments.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct{ path, name string }{
		{"/v1/sweeps/" + sub.ID + "/csv?wait=1", "csv"},
		{"/v1/sweeps/" + sub.ID + "/csv?wait=1&long=1", "long csv"},
		{"/v1/sweeps/" + sub.ID + "/json?wait=1", "json"},
	} {
		resp, got := request(t, hs, "GET", q.path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s: %s", q.name, resp.Status, got)
		}
		var buf bytes.Buffer
		switch q.name {
		case "csv":
			err = experiments.WriteRowsCSV(&buf, want, false)
		case "long csv":
			err = experiments.WriteRowsCSV(&buf, want, true)
		case "json":
			err = experiments.WriteSweepJSON(&buf, axes, want)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("%s differs from the CLI rendering:\ngot  %q\nwant %q", q.name, got, buf.Bytes())
		}
	}

	// Status reflects a finished run with every cell computed live.
	resp, body = request(t, hs, "GET", "/v1/sweeps/"+sub.ID, nil)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != StateDone || st.Computed != 2 || st.Quarantined != 0 {
		t.Fatalf("final status: %s %+v", resp.Status, st)
	}

	// The rows stream replays every settled row (terminal run: the
	// stream ends on its own).
	_, nd := request(t, hs, "GET", "/v1/sweeps/"+sub.ID+"/rows", nil)
	lines := strings.Split(strings.TrimSpace(string(nd)), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows stream: %d lines, want 2:\n%s", len(lines), nd)
	}
	var row experiments.SweepRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("rows stream line 1: %v", err)
	}

	if resp, _ := request(t, hs, "GET", "/v1/sweeps/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing sweep: %s", resp.Status)
	}
}

// TestServeCacheAndOverlap: a resubmitted grid is served without
// computing (checkpoint + cell cache), and an overlapping larger grid
// computes only its new cells.
func TestServeCacheAndOverlap(t *testing.T) {
	_, hs, _ := newTestServer(t, 2)
	axes := testAxes(2)

	_, body := request(t, hs, "POST", "/v1/sweeps", axes)
	var first struct{ Status }
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if resp, _ := request(t, hs, "GET", "/v1/sweeps/"+first.ID+"/csv?wait=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %s", resp.Status)
	}

	// Identical grid again: a fresh run, zero cells computed.
	resp, body := request(t, hs, "POST", "/v1/sweeps", axes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %s: %s", resp.Status, body)
	}
	var again struct{ Status }
	json.Unmarshal(body, &again)
	if again.ID == first.ID {
		t.Fatalf("finished run was reused; want a fresh cache-served run")
	}
	_, got1 := request(t, hs, "GET", "/v1/sweeps/"+first.ID+"/csv?wait=1", nil)
	_, got2 := request(t, hs, "GET", "/v1/sweeps/"+again.ID+"/csv?wait=1", nil)
	if !bytes.Equal(got1, got2) {
		t.Error("cache-served rerun differs from the original")
	}
	_, body = request(t, hs, "GET", "/v1/sweeps/"+again.ID, nil)
	var st Status
	json.Unmarshal(body, &st)
	if st.Computed != 0 || st.Cached != 2 {
		t.Fatalf("resubmission computed %d / cached %d, want 0 / 2: %+v", st.Computed, st.Cached, st)
	}

	// Overlap: one more seed rep shares the first two cells.
	_, body = request(t, hs, "POST", "/v1/sweeps", testAxes(3))
	var big struct{ Status }
	json.Unmarshal(body, &big)
	if resp, _ := request(t, hs, "GET", "/v1/sweeps/"+big.ID+"/csv?wait=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("overlapping run: %s", resp.Status)
	}
	_, body = request(t, hs, "GET", "/v1/sweeps/"+big.ID, nil)
	json.Unmarshal(body, &st)
	if st.Cached != 2 || st.Computed != 1 {
		t.Fatalf("overlapping grid cached %d / computed %d, want 2 / 1: %+v", st.Cached, st.Computed, st)
	}
}

// TestServeDedupInFlight: submitting a grid identical to a queued or
// running one joins that run instead of queueing a duplicate.
func TestServeDedupInFlight(t *testing.T) {
	s, _, _ := newTestServer(t, 1)
	axes := testAxes(2)
	a, reused, err := s.Submit(axes)
	if err != nil || reused {
		t.Fatalf("first submit: %+v %v %v", a, reused, err)
	}
	b, reused, err := s.Submit(axes)
	if err != nil || !reused || b.ID != a.ID {
		t.Fatalf("second submit: %+v reused=%v err=%v, want reuse of %s", b, reused, err, a.ID)
	}
}

// TestServeDrain: cancelling the run context flips the service into
// draining — /healthz reports it, submissions are refused with 503 —
// and the run loop exits cleanly.
func TestServeDrain(t *testing.T) {
	_, hs, cancel := newTestServer(t, 0)
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := hs.Client().Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.TrimSpace(string(body)) == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining: %q", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := request(t, hs, "POST", "/v1/sweeps", testAxes(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %s: %s", resp.Status, body)
	}
}

// TestServeConsecutiveRuns: the supervised fleet is torn down and
// rebuilt per sweep — slots must DialRetry a listener that comes and
// goes between runs, and every run must finish clean. (Flap-fault
// recovery itself is proved by ChaosServe and the CI smoke job, which
// kill workers for real.)
func TestServeConsecutiveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two supervised sweeps")
	}
	_, hs, _ := newTestServer(t, 2)
	axes := testAxes(3)
	for i := 0; i < 2; i++ {
		ax := axes
		ax.Seed = uint64(100 + i)
		_, body := request(t, hs, "POST", "/v1/sweeps", ax)
		var sub struct{ Status }
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		resp, _ := request(t, hs, "GET", "/v1/sweeps/"+sub.ID+"/csv?wait=1", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %s", i, resp.Status)
		}
		_, body = request(t, hs, "GET", "/v1/sweeps/"+sub.ID, nil)
		var st Status
		json.Unmarshal(body, &st)
		if st.State != StateDone || st.Quarantined != 0 {
			t.Fatalf("run %d status: %+v", i, st)
		}
	}
}
