package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"metaleak/internal/experiments"
)

// The HTTP surface (DESIGN.md §12). All /v1 routes require the bearer
// token when one is configured; /healthz never does (probes must not
// hold secrets). Routes use the Go 1.22 method/pattern mux, so the
// method mismatch and path variable handling come from net/http.

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/sweeps", s.auth(s.handleSubmit))
	mux.HandleFunc("GET /v1/status", s.auth(s.handleStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.auth(s.handleSweep))
	mux.HandleFunc("GET /v1/sweeps/{id}/rows", s.auth(s.handleRows))
	mux.HandleFunc("GET /v1/sweeps/{id}/csv", s.auth(s.handleCSV))
	mux.HandleFunc("GET /v1/sweeps/{id}/json", s.auth(s.handleJSON))
	return mux
}

// auth wraps a handler with the bearer-token check. The comparison is
// constant-time; a mismatch reveals nothing but the 401.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Token == "" {
		return next
	}
	return func(w http.ResponseWriter, req *http.Request) {
		got, ok := strings.CutPrefix(req.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.Token)) != 1 {
			http.Error(w, "authentication failed: bad or missing bearer token", http.StatusUnauthorized)
			return
		}
		next(w, req)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleSubmit accepts a SweepAxes JSON document and enqueues it,
// deduplicating in-flight grids by fingerprint. 202 on enqueue, 200
// when an existing queued/running run was reused.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var axes experiments.SweepAxes
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&axes); err != nil {
		http.Error(w, "bad sweep spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, reused, err := s.Submit(axes)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "draining") {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	code := http.StatusAccepted
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, struct {
		Status
		Reused bool
	}{st, reused})
}

// handleStatus lists every sweep in submission order, plus the active
// worker listener address external workers can -connect to.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := struct {
		Draining   bool
		WorkerAddr string `json:",omitempty"`
		Sweeps     []Status
	}{Draining: s.draining, WorkerAddr: s.workerAddr, Sweeps: []Status{}}
	for _, id := range s.order {
		out.Sweeps = append(out.Sweeps, s.statusLocked(s.sweeps[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		http.Error(w, "no such sweep", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(r)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleRows streams the run's rows as NDJSON in arrival order
// (cache-served rows up front in grid order, then live rows as they
// settle), holding the stream open until the run reaches a terminal
// state or the client disconnects. Each row carries its grid Index, so
// clients needing grid order sort on it.
func (s *Server) handleRows(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		http.Error(w, "no such sweep", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Bridge the client's disconnect into the cond the row appends
	// broadcast on.
	stop := context.AfterFunc(req.Context(), s.cond.Broadcast)
	defer stop()

	next := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for next < len(r.live) {
			row := r.live[next]
			next++
			s.mu.Unlock()
			err := enc.Encode(row)
			if flusher != nil {
				flusher.Flush()
			}
			s.mu.Lock()
			if err != nil {
				return
			}
		}
		if req.Context().Err() != nil {
			return
		}
		if r.State != StateQueued && r.State != StateRunning {
			return
		}
		s.cond.Wait()
	}
}

// handleCSV renders the finished run as `metaleak sweep` CSV (wide, or
// long with ?long=1). With ?wait=1 it blocks until the run finishes;
// otherwise an unfinished run is a 409. The bytes are produced by the
// same writer the CLI uses — byte-identical by construction.
func (s *Server) handleCSV(w http.ResponseWriter, req *http.Request) {
	s.serveRendered(w, req, func(rows []experiments.SweepRow, r *sweepRun) error {
		w.Header().Set("Content-Type", "text/csv")
		return experiments.WriteRowsCSV(w, rows, req.URL.Query().Get("long") == "1")
	})
}

// handleJSON renders the finished run as `metaleak sweep -json`'s
// document (rows plus per-point aggregates), same writer as the CLI.
func (s *Server) handleJSON(w http.ResponseWriter, req *http.Request) {
	s.serveRendered(w, req, func(rows []experiments.SweepRow, r *sweepRun) error {
		w.Header().Set("Content-Type", "application/json")
		return experiments.WriteSweepJSON(w, r.Axes, rows)
	})
}

func (s *Server) serveRendered(w http.ResponseWriter, req *http.Request, render func([]experiments.SweepRow, *sweepRun) error) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		http.Error(w, "no such sweep", http.StatusNotFound)
		return
	}
	var rows []experiments.SweepRow
	var state string
	if req.URL.Query().Get("wait") == "1" {
		var err error
		rows, state, err = s.waitDone(req.Context(), r)
		if err != nil {
			return // client went away while waiting
		}
	} else {
		s.mu.Lock()
		rows, state = r.final, r.State
		s.mu.Unlock()
		if state == StateQueued || state == StateRunning {
			http.Error(w, fmt.Sprintf("sweep %s is %s; retry with ?wait=1", r.ID, state), http.StatusConflict)
			return
		}
	}
	if state != StateDone {
		s.mu.Lock()
		msg := r.Err
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("sweep %s %s: %s", r.ID, state, msg), http.StatusInternalServerError)
		return
	}
	render(rows, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
