package mirage

import (
	"testing"

	"metaleak/internal/arch"
)

func TestHitAfterInstall(t *testing.T) {
	c := New(DefaultConfig())
	b := arch.BlockID(42)
	if c.Access(b) {
		t.Fatal("cold access hit")
	}
	if !c.Access(b) {
		t.Fatal("warm access missed")
	}
}

func TestOccupancyBounded(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	for i := 0; i < 3*cfg.DataBlocks; i++ {
		c.Access(arch.BlockID(i))
		if c.Occupancy() > cfg.DataBlocks {
			t.Fatalf("occupancy %d exceeds data store %d", c.Occupancy(), cfg.DataBlocks)
		}
	}
	if c.Occupancy() != cfg.DataBlocks {
		t.Fatalf("steady-state occupancy %d", c.Occupancy())
	}
}

func TestGlobalEvictionsNotSetEvictions(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	for i := 0; i < 4*cfg.DataBlocks; i++ {
		c.Access(arch.BlockID(i))
	}
	s := c.Stats()
	if s.GlobalEvictions == 0 {
		t.Fatal("no global evictions under pressure")
	}
	// With 6 extra ways per skew, SAE must be (essentially) absent.
	if s.SetEvictions > s.GlobalEvictions/100 {
		t.Fatalf("too many set evictions: %d vs %d global", s.SetEvictions, s.GlobalEvictions)
	}
}

func TestRandomEvictionEventuallyRemovesTarget(t *testing.T) {
	// The core of the paper's Fig. 18 argument: flushing a target out of
	// MIRAGE requires only enough random accesses.
	cfg := DefaultConfig()
	cfg.Seed = 1
	c := New(cfg)
	target := arch.BlockID(1 << 30)
	// Warm the cache to steady state.
	for i := 0; i < 2*cfg.DataBlocks; i++ {
		c.Access(arch.BlockID(i))
	}
	c.Access(target)
	n := 0
	for c.Contains(target) && n < 100*cfg.DataBlocks {
		n++
		c.Access(arch.BlockID(1000000 + n))
	}
	if c.Contains(target) {
		t.Fatal("target never evicted by random accesses")
	}
	if n < 100 {
		t.Fatalf("target evicted suspiciously fast (%d accesses)", n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, bool) {
		cfg := DefaultConfig()
		cfg.Seed = 7
		c := New(cfg)
		for i := 0; i < 2*cfg.DataBlocks; i++ {
			c.Access(arch.BlockID(i * 3))
		}
		return c.Stats().GlobalEvictions, c.Contains(arch.BlockID(0))
	}
	g1, r1 := run()
	g2, r2 := run()
	if g1 != g2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", g1, r1, g2, r2)
	}
}

func TestSkewIndicesDiffer(t *testing.T) {
	c := New(DefaultConfig())
	same := 0
	for i := 0; i < 1000; i++ {
		if c.setIndex(0, arch.BlockID(i)) == c.setIndex(1, arch.BlockID(i)) {
			same++
		}
	}
	// Two independent keyed mappings should collide ~1/Sets of the time.
	if same > 30 {
		t.Fatalf("skew mappings too correlated: %d/1000 collisions", same)
	}
}

func TestMetaCacheDutyCycle(t *testing.T) {
	// The AccessW/InsertReport/Invalidate surface the secure memory
	// controller drives when MIRAGE serves as the metadata cache.
	c := New(DefaultConfig())
	b := arch.BlockID(10)
	if c.AccessW(b, false) {
		t.Fatal("cold AccessW hit")
	}
	if ev, had := c.InsertReport(b, false); had {
		t.Fatalf("insert into empty cache evicted %v", ev)
	}
	if !c.AccessW(b, true) { // write hit marks dirty
		t.Fatal("warm AccessW missed")
	}
	present, dirty := c.Invalidate(b)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(b) {
		t.Fatal("block survived invalidation")
	}
	if p, d := c.Invalidate(b); p || d {
		t.Fatal("double invalidation reported presence")
	}
}

func TestInsertReportSurfacesDirtyEvictions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataBlocks = 64
	cfg.Sets = 8
	cfg.Seed = 3
	c := New(cfg)
	// Fill with dirty lines.
	for i := 0; i < cfg.DataBlocks; i++ {
		c.InsertReport(arch.BlockID(i), true)
	}
	// Further inserts must evict and report the dirtiness.
	sawDirty := false
	for i := 0; i < 50; i++ {
		ev, had := c.InsertReport(arch.BlockID(1000+i), false)
		if had && ev.Dirty {
			sawDirty = true
			if c.Contains(ev.Block) {
				t.Fatal("evicted block still resident")
			}
		}
	}
	if !sawDirty {
		t.Fatal("no dirty eviction reported under pressure")
	}
}

func TestInsertReportIdempotentOnResident(t *testing.T) {
	c := New(DefaultConfig())
	b := arch.BlockID(5)
	c.InsertReport(b, false)
	if _, had := c.InsertReport(b, true); had {
		t.Fatal("re-insert evicted")
	}
	// The dirty flag from the re-insert must stick.
	_, dirty := c.Invalidate(b)
	if !dirty {
		t.Fatal("re-insert lost dirty flag")
	}
}
