// Package mirage models the MIRAGE randomized cache (Saileshwar &
// Qureshi, USENIX Security 2021) used in the paper's §IX-B defence study:
// a two-skew V-way style design with extra invalid tags per set and fully
// random global eviction, which makes conflict-based eviction-set attacks
// (Prime+Probe) impractical.
//
// Fig. 18 of the paper shows why this does not stop MetaLeak-T: the
// attacker does not need a conflict-based eviction set — flushing the
// target out of a randomized cache just takes enough random accesses,
// because every miss evicts a uniformly random resident line.
package mirage

import (
	"fmt"

	"metaleak/internal/arch"
)

// Config describes a MIRAGE instance.
type Config struct {
	DataBlocks int // capacity of the data store (e.g. 256 KiB / 64 B = 4096)
	Sets       int // sets per skew
	BaseWays   int // baseline tag ways per skew (8)
	ExtraWays  int // additional invalid tags per set per skew (6)
	Seed       uint64
}

// DefaultConfig returns the configuration of the paper's experiment: the
// 256 KiB metadata cache re-organized as a two-skew MIRAGE with 8+6 ways
// per skew.
func DefaultConfig() Config {
	return Config{
		DataBlocks: 4096,
		Sets:       256,
		BaseWays:   8,
		ExtraWays:  6,
	}
}

type tag struct {
	block arch.BlockID
	valid bool
}

// Stats counts cache events.
type Stats struct {
	Hits            uint64
	Misses          uint64
	GlobalEvictions uint64
	SetEvictions    uint64 // set-associative evictions (MIRAGE's failure mode)
}

// Cache is a MIRAGE model. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	skews [2][][]tag
	// resident maps a block to its tag location so random global eviction
	// can find and invalidate it; order keeps a deterministic list of
	// resident blocks for uniform sampling.
	resident map[arch.BlockID][3]int // skew, set, way
	order    []arch.BlockID
	orderIdx map[arch.BlockID]int
	// dirty state and last-eviction plumbing for metadata-cache duty.
	dirty       map[[3]int]bool
	dirtyBlocks map[arch.BlockID]bool
	lastEvict   Eviction
	haveEvict   bool
	rng         *arch.RNG
	keys        [2]uint64
	stats       Stats
}

// New builds a MIRAGE cache.
func New(cfg Config) *Cache {
	if cfg.DataBlocks <= 0 || cfg.Sets <= 0 {
		panic(fmt.Sprintf("mirage: bad config %+v", cfg))
	}
	c := &Cache{
		cfg:         cfg,
		resident:    make(map[arch.BlockID][3]int),
		orderIdx:    make(map[arch.BlockID]int),
		dirty:       make(map[[3]int]bool),
		dirtyBlocks: make(map[arch.BlockID]bool),
		rng:         arch.NewRNG(cfg.Seed ^ 0x319a6e),
	}
	ways := cfg.BaseWays + cfg.ExtraWays
	for s := 0; s < 2; s++ {
		c.skews[s] = make([][]tag, cfg.Sets)
		for i := range c.skews[s] {
			c.skews[s][i] = make([]tag, ways)
		}
		c.keys[s] = c.rng.Uint64()
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// setIndex computes the randomized set mapping for a skew (a keyed mix,
// standing in for MIRAGE's cipher-based index derivation).
func (c *Cache) setIndex(skew int, b arch.BlockID) int {
	x := uint64(b) ^ c.keys[skew]
	x ^= x >> 23
	x *= 0x2545f4914f6cdd1d
	x ^= x >> 29
	return int(x % uint64(c.cfg.Sets))
}

// Contains reports residency without touching state.
func (c *Cache) Contains(b arch.BlockID) bool {
	_, ok := c.resident[b]
	return ok
}

// Access touches a block, installing it on a miss. It returns whether the
// access hit.
func (c *Cache) Access(b arch.BlockID) bool {
	if c.Contains(b) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	c.install(b)
	return false
}

// install implements MIRAGE's load-aware skew selection with random
// global eviction.
func (c *Cache) install(b arch.BlockID) {
	s0, s1 := c.setIndex(0, b), c.setIndex(1, b)
	inv0, inv1 := c.invalidWays(0, s0), c.invalidWays(1, s1)
	skew, set := 0, s0
	switch {
	case inv0 == 0 && inv1 == 0:
		// No invalid tag in either skew: MIRAGE's SAE case, designed to be
		// astronomically rare with enough extra ways. Fall back to evicting
		// from a random skew's set.
		c.stats.SetEvictions++
		if c.rng.Bool(0.5) {
			skew, set = 1, s1
		}
		w := c.rng.Intn(len(c.skews[skew][set]))
		c.evictTag(skew, set, w)
	case inv1 > inv0:
		skew, set = 1, s1
	case inv0 > inv1:
		skew, set = 0, s0
	default:
		if c.rng.Bool(0.5) {
			skew, set = 1, s1
		}
	}
	// Data store full? Random global eviction.
	if len(c.order) >= c.cfg.DataBlocks {
		c.evictRandom()
	}
	for w := range c.skews[skew][set] {
		if !c.skews[skew][set][w].valid {
			c.skews[skew][set][w] = tag{block: b, valid: true}
			c.resident[b] = [3]int{skew, set, w}
			c.orderIdx[b] = len(c.order)
			c.order = append(c.order, b)
			return
		}
	}
	// All tags valid (only reachable in the SAE fallback, which freed one).
	panic("mirage: no free tag after eviction")
}

func (c *Cache) invalidWays(skew, set int) int {
	n := 0
	for _, t := range c.skews[skew][set] {
		if !t.valid {
			n++
		}
	}
	return n
}

func (c *Cache) evictTag(skew, set, way int) {
	t := &c.skews[skew][set][way]
	if t.valid {
		c.recordEviction(t.block, [3]int{skew, set, way})
		c.dropResident(t.block)
		t.valid = false
	}
}

// recordEviction captures the displaced block for InsertReport's caller.
func (c *Cache) recordEviction(b arch.BlockID, loc [3]int) {
	c.lastEvict = Eviction{Block: b, Dirty: c.dirty[loc]}
	c.haveEvict = true
	delete(c.dirty, loc)
	delete(c.dirtyBlocks, b)
}

// dropResident removes a block from the residency bookkeeping.
func (c *Cache) dropResident(b arch.BlockID) {
	delete(c.resident, b)
	i := c.orderIdx[b]
	last := len(c.order) - 1
	c.order[i] = c.order[last]
	c.orderIdx[c.order[i]] = i
	c.order = c.order[:last]
	delete(c.orderIdx, b)
}

// evictRandom removes a uniformly random resident block — the global
// eviction that decouples evictions from addresses.
func (c *Cache) evictRandom() {
	c.stats.GlobalEvictions++
	b := c.order[c.rng.Intn(len(c.order))]
	loc := c.resident[b]
	c.recordEviction(b, loc)
	c.skews[loc[0]][loc[1]][loc[2]].valid = false
	c.dropResident(b)
}

// Occupancy returns the number of resident blocks.
func (c *Cache) Occupancy() int { return len(c.order) }

// The methods below let a MIRAGE instance serve as the memory controller's
// metadata cache (the §IX-B defence deployed, not just modelled): dirty
// tracking and eviction reporting match the set-associative cache's
// contract so the controller's lazy tree updates keep working.

// Eviction mirrors cache.Eviction for controller write-back handling.
type Eviction struct {
	Block arch.BlockID
	Dirty bool
}

// AccessW touches a block like Access but marks it dirty on a write hit.
// Misses do NOT install (the controller calls InsertReport explicitly,
// as with the set-associative cache).
func (c *Cache) AccessW(b arch.BlockID, write bool) bool {
	loc, ok := c.resident[b]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	if write {
		c.dirty[loc] = true
		c.dirtyBlocks[b] = true
	}
	return true
}

// InsertReport installs a block, reporting the eviction it caused so the
// caller can write back dirty metadata.
func (c *Cache) InsertReport(b arch.BlockID, dirty bool) (Eviction, bool) {
	if loc, ok := c.resident[b]; ok {
		if dirty {
			c.dirty[loc] = true
			c.dirtyBlocks[b] = true
		}
		return Eviction{}, false
	}
	c.stats.Misses++
	c.lastEvict = Eviction{}
	c.haveEvict = false
	c.install(b)
	if dirty {
		loc := c.resident[b]
		c.dirty[loc] = true
		c.dirtyBlocks[b] = true
	}
	return c.lastEvict, c.haveEvict
}

// Invalidate removes a block, reporting whether it was present and dirty.
func (c *Cache) Invalidate(b arch.BlockID) (wasPresent, wasDirty bool) {
	loc, ok := c.resident[b]
	if !ok {
		return false, false
	}
	d := c.dirty[loc]
	c.skews[loc[0]][loc[1]][loc[2]].valid = false
	delete(c.dirty, loc)
	delete(c.dirtyBlocks, b)
	c.dropResident(b)
	return true, d
}
