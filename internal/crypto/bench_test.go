package crypto

import (
	"testing"

	"metaleak/internal/arch"
)

func BenchmarkEncryptBlock(b *testing.B) {
	e := New(DefaultConfig())
	var p Block
	b.SetBytes(arch.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Encrypt(p, arch.BlockID(i), uint64(i))
	}
}

func BenchmarkMAC(b *testing.B) {
	e := New(DefaultConfig())
	var ct Block
	b.SetBytes(arch.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.MAC(ct, arch.BlockID(i), uint64(i))
	}
}

func BenchmarkHashNode(b *testing.B) {
	e := New(DefaultConfig())
	buf := make([]byte, 144) // an SCT node block's hash input
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.HashBytes(buf)
	}
}

func BenchmarkFastModeEncrypt(b *testing.B) {
	e := New(Config{AESLatency: 20, HashLatency: 12, Fast: true})
	var p Block
	b.SetBytes(arch.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Encrypt(p, arch.BlockID(i), uint64(i))
	}
}
