package crypto

// ghash implements the GHASH universal hash of GCM (McGrew & Viega, cited
// by the paper as the MAC of choice in secure processors): a polynomial
// evaluation over GF(2^128) with the field defined by
// x^128 + x^7 + x^2 + x + 1.
//
// The multiply uses Shoup's 4-bit table method: the engine precomputes
// H·i for every 4-bit i once per key, and each 128-bit block then costs 32
// table lookups instead of a 128-round bit-serial loop — the dominant cost
// of every secure access before this. The bit-serial gfMul is kept as the
// reference implementation; a property test pins the table method to it.
// The simulator charges a fixed HashLatency regardless, so host-side
// constant-time behaviour is irrelevant here.

// Field elements are [2]uint64 in the GCM bit order: [0] holds the first
// eight bytes (big-endian), [1] the second eight, and the most significant
// bit of [0] is the coefficient of x^0.

// ghashReduction[i] is the polynomial reduction of i·x^{-4} folded back
// into the top 16 bits (the standard GCM 4-bit reduction table).
var ghashReduction = [16]uint64{
	0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
	0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
}

// ghashTable holds the per-key precomputation: product[i] = H · i, indexed
// by the 4-bit reversed value of i (so the inner loop can consume nibbles
// low-first without re-reversing).
type ghashTable struct {
	product [16][2]uint64
}

// reverse4 reverses the bits of a 4-bit value.
func reverse4(i int) int {
	return (i&8)>>3 | (i&4)>>1 | (i&2)<<1 | (i&1)<<3
}

// double multiplies an element by x (a right shift in GCM bit order, with
// reduction by the field polynomial when the x^127 coefficient falls off).
func double(v [2]uint64) [2]uint64 {
	carry := v[1] & 1
	v[1] = v[1]>>1 | v[0]<<63
	v[0] >>= 1
	if carry == 1 {
		v[0] ^= 0xe100000000000000
	}
	return v
}

// init fills the multiplication table for subkey h.
func (t *ghashTable) init(h [2]uint64) {
	t.product[reverse4(1)] = h
	for i := 2; i < 16; i += 2 {
		d := double(t.product[reverse4(i/2)])
		t.product[reverse4(i)] = d
		t.product[reverse4(i+1)] = [2]uint64{d[0] ^ h[0], d[1] ^ h[1]}
	}
}

// mul multiplies y by the table's subkey H in place.
func (t *ghashTable) mul(y *[2]uint64) {
	var z [2]uint64
	for i := 0; i < 2; i++ {
		word := y[1]
		if i == 1 {
			word = y[0]
		}
		for j := 0; j < 64; j += 4 {
			msw := z[1] & 0xf
			z[1] = z[1]>>4 | z[0]<<60
			z[0] >>= 4
			z[0] ^= ghashReduction[msw] << 48
			p := &t.product[word&0xf]
			z[0] ^= p[0]
			z[1] ^= p[1]
			word >>= 4
		}
	}
	*y = z
}

// ghash is one accumulation in progress.
type ghash struct {
	t *ghashTable
	y [2]uint64
}

func (g *ghash) init(t *ghashTable) {
	g.t = t
	g.y = [2]uint64{}
}

// update absorbs one 128-bit block: Y <- (Y xor X) * H.
func (g *ghash) update(hi, lo uint64) {
	g.y[0] ^= hi
	g.y[1] ^= lo
	g.t.mul(&g.y)
}

// sum folds the 128-bit state to the 64-bit tag used by the simulator.
func (g *ghash) sum() uint64 { return g.y[0] ^ g.y[1] }

// gfMul multiplies two elements of GF(2^128) in the GCM bit order: the
// classic shift-and-conditionally-reduce bit-serial multiply. It is the
// reference the table method is tested against; production paths use
// ghashTable.mul.
func gfMul(x, y [2]uint64) [2]uint64 {
	var z [2]uint64
	v := y
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = (x[0] >> (63 - i)) & 1
		} else {
			bit = (x[1] >> (127 - i)) & 1
		}
		if bit == 1 {
			z[0] ^= v[0]
			z[1] ^= v[1]
		}
		v = double(v)
	}
	return z
}
