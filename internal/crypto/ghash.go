package crypto

// ghash implements the GHASH universal hash of GCM (McGrew & Viega, cited
// by the paper as the MAC of choice in secure processors): a polynomial
// evaluation over GF(2^128) with the field defined by
// x^128 + x^7 + x^2 + x + 1.
//
// The implementation is the classic shift-and-conditionally-reduce
// bit-serial multiply. It is deliberately simple; the simulator charges a
// fixed HashLatency regardless, so host-side constant-time behaviour is
// irrelevant here.
type ghash struct {
	h [2]uint64 // subkey H
	y [2]uint64 // accumulator
}

func (g *ghash) init(h [2]uint64) {
	g.h = h
	g.y = [2]uint64{}
}

// update absorbs one 128-bit block: Y <- (Y xor X) * H.
func (g *ghash) update(hi, lo uint64) {
	g.y[0] ^= hi
	g.y[1] ^= lo
	g.y = gfMul(g.y, g.h)
}

// sum folds the 128-bit state to the 64-bit tag used by the simulator.
func (g *ghash) sum() uint64 { return g.y[0] ^ g.y[1] }

// gfMul multiplies two elements of GF(2^128) in the GCM bit order
// (bit 0 of x[0] is the coefficient of the highest power).
func gfMul(x, y [2]uint64) [2]uint64 {
	var z [2]uint64
	v := y
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = (x[0] >> (63 - i)) & 1
		} else {
			bit = (x[1] >> (127 - i)) & 1
		}
		if bit == 1 {
			z[0] ^= v[0]
			z[1] ^= v[1]
		}
		// v <- v * x (shift right in GCM bit order), reduce by R.
		carry := v[1] & 1
		v[1] = v[1]>>1 | v[0]<<63
		v[0] >>= 1
		if carry == 1 {
			v[0] ^= 0xe100000000000000
		}
	}
	return z
}
