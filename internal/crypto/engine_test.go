package crypto

import (
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func eng() *Engine  { return New(DefaultConfig()) }
func fast() *Engine { return New(Config{AESLatency: 20, HashLatency: 12, Fast: true}) }

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := eng()
	var p Block
	for i := range p {
		p[i] = byte(i)
	}
	ct := e.Encrypt(p, 42, 7)
	if ct == p {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := e.Decrypt(ct, 42, 7); got != p {
		t.Fatal("round trip failed")
	}
}

func TestCiphertextDependsOnCounter(t *testing.T) {
	e := eng()
	var p Block
	c1 := e.Encrypt(p, 1, 1)
	c2 := e.Encrypt(p, 1, 2)
	if c1 == c2 {
		t.Fatal("temporal uniqueness violated: same ciphertext for different counters")
	}
}

func TestCiphertextDependsOnAddress(t *testing.T) {
	e := eng()
	var p Block
	c1 := e.Encrypt(p, 1, 1)
	c2 := e.Encrypt(p, 2, 1)
	if c1 == c2 {
		t.Fatal("spatial uniqueness violated: same ciphertext for different addresses")
	}
}

func TestMACBindsAll(t *testing.T) {
	e := eng()
	var ct Block
	ct[5] = 9
	base := e.MAC(ct, 10, 3)
	ct2 := ct
	ct2[5] ^= 1
	if e.MAC(ct2, 10, 3) == base {
		t.Fatal("MAC ignores ciphertext")
	}
	if e.MAC(ct, 11, 3) == base {
		t.Fatal("MAC ignores address (splicing undetected)")
	}
	if e.MAC(ct, 10, 4) == base {
		t.Fatal("MAC ignores counter (replay undetected)")
	}
}

func TestHashBytesSensitivity(t *testing.T) {
	e := eng()
	a := []byte("integrity tree node contents....")
	b := append([]byte(nil), a...)
	b[3] ^= 1
	if e.HashBytes(a) == e.HashBytes(b) {
		t.Fatal("hash collision on single-bit flip")
	}
	if e.HashBytes(a) != e.HashBytes(a) {
		t.Fatal("hash not deterministic")
	}
}

func TestHashBytesLengthExtension(t *testing.T) {
	e := eng()
	if e.HashBytes([]byte{0}) == e.HashBytes([]byte{0, 0}) {
		t.Fatal("hash ignores length")
	}
}

func TestFastModePreservesProperties(t *testing.T) {
	e := fast()
	var p Block
	p[0] = 1
	ct := e.Encrypt(p, 5, 9)
	if e.Decrypt(ct, 5, 9) != p {
		t.Fatal("fast mode round trip failed")
	}
	if e.MAC(ct, 5, 9) == e.MAC(ct, 5, 10) {
		t.Fatal("fast MAC ignores counter")
	}
}

// Property: for random plaintext/address/counter, decryption inverts
// encryption, and decrypting with a wrong counter never yields the
// plaintext (the replay-detection foundation).
func TestQuickRoundTripAndWrongCounter(t *testing.T) {
	e := eng()
	f := func(p Block, addr uint32, c uint16) bool {
		b := arch.BlockID(addr)
		ct := e.Encrypt(p, b, uint64(c))
		if e.Decrypt(ct, b, uint64(c)) != p {
			return false
		}
		return e.Decrypt(ct, b, uint64(c)+1) != p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GHASH-based MACs of distinct (ct, addr, ctr) triples collide
// with negligible probability — check no collisions over random samples.
func TestQuickMACUniqueness(t *testing.T) {
	e := eng()
	seen := make(map[uint64]bool)
	f := func(ct Block, addr uint16, c uint8) bool {
		m := e.MAC(ct, arch.BlockID(addr), uint64(c))
		if seen[m] {
			return false
		}
		seen[m] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulAgainstKnownIdentity(t *testing.T) {
	// Multiplying by the GCM "1" element (MSB-first: 0x80000...) must be
	// the identity.
	one := [2]uint64{1 << 63, 0}
	x := [2]uint64{0x0123456789abcdef, 0xfedcba9876543210}
	if got := gfMul(x, one); got != x {
		t.Fatalf("x * 1 != x: %x", got)
	}
	if got := gfMul(one, x); got != x {
		t.Fatalf("1 * x != x: %x", got)
	}
}

func TestGFMulCommutative(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x, y := [2]uint64{a, b}, [2]uint64{c, d}
		return gfMul(x, y) == gfMul(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulDistributive(t *testing.T) {
	f := func(a, b, c, d, e2, f2 uint64) bool {
		x, y, z := [2]uint64{a, b}, [2]uint64{c, d}, [2]uint64{e2, f2}
		// x*(y+z) == x*y + x*z (addition is XOR)
		sum := [2]uint64{y[0] ^ z[0], y[1] ^ z[1]}
		l := gfMul(x, sum)
		r1, r2 := gfMul(x, y), gfMul(x, z)
		return l == [2]uint64{r1[0] ^ r2[0], r1[1] ^ r2[1]}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBadKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short key")
		}
	}()
	New(Config{Key: []byte("short")})
}

func TestGhashTableMatchesBitSerial(t *testing.T) {
	// The table-driven multiply must agree with the reference bit-serial
	// gfMul for every subkey and operand — it is what keeps the optimized
	// MAC/HashBytes byte-identical to the pre-optimization engine.
	f := func(h0, h1, y0, y1 uint64) bool {
		var tbl ghashTable
		tbl.init([2]uint64{h0, h1})
		y := [2]uint64{y0, y1}
		tbl.mul(&y)
		return y == gfMul([2]uint64{y0, y1}, [2]uint64{h0, h1})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMACDistinguishesTopBitCounters(t *testing.T) {
	// Two seeds differing only in bit 63 — exactly where MoC/GC key-epoch
	// bits live — must produce distinct tags in both engines. The fast
	// path used to fold the counter as b ^ (ctr<<1), shifting the MSB out.
	for _, e := range []*Engine{eng(), fast()} {
		f := func(ct Block, addr uint16, c uint64) bool {
			lo := c &^ (1 << 63)
			hi := lo | 1<<63
			return e.MAC(ct, arch.BlockID(addr), lo) != e.MAC(ct, arch.BlockID(addr), hi)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("Fast=%v: %v", e.cfg.Fast, err)
		}
	}
}

func TestBadMACKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short MAC key")
		}
	}()
	// A short MACKey used to silently partial-copy over the derived
	// subkey; it must be rejected like a short AES key.
	New(Config{MACKey: []byte("short")})
}
