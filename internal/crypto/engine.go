// Package crypto implements the on-chip security engine of the simulated
// secure processor (Fig. 1 of the paper): counter-mode encryption with
// per-chunk one-time pads, GHASH-based message authentication over
// ciphertext, and the node hashing used by integrity trees.
//
// The engine is functional, not mocked: data written through the memory
// controller is genuinely AES-CTR encrypted with the fused counter as part
// of the seed, MACs genuinely bind ciphertext to address and counter, and
// tampering with the backing store genuinely fails verification. Timing is
// modelled separately (a fixed AES latency per Table I) and never depends
// on the host machine.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"metaleak/internal/arch"
)

// Block is a 64-byte memory block's contents.
type Block [arch.BlockSize]byte

// chunks per 64 B block at the AES-128 chunk size of 16 B.
const chunksPerBlock = arch.BlockSize / 16

// Config parameterizes the engine.
type Config struct {
	Key         []byte      // 16-byte AES key; nil selects a fixed default
	MACKey      []byte      // 16-byte GHASH subkey source; nil = derive from Key
	AESLatency  arch.Cycles // Table I: 20 cycles
	HashLatency arch.Cycles // latency of one node-hash / MAC operation
	Fast        bool        // replace AES/GHASH with fast keyed mixers (for very long benches)
}

// DefaultConfig returns the Table I crypto engine (20-cycle AES).
func DefaultConfig() Config {
	return Config{AESLatency: 20, HashLatency: 20}
}

// Engine is the security engine. Not safe for concurrent use.
type Engine struct {
	cfg Config
	aes cipher.Block
	// h is the GHASH subkey H (big-endian halves). Deliberately not a
	// //metalint:secret seed: MAC outputs are integrity metadata stored
	// in public memory, so h-derived values legitimately reach every
	// counter and tree node the attacker observes — in the paper's
	// model the subkey is not what the channels recover.
	h     [2]uint64
	tbl   ghashTable
	fastK uint64
	// pad and seed are scratch buffers for otp: the AES interface call
	// forces its arguments to escape, so stack buffers would heap-allocate
	// one pad per access. The engine is single-threaded by contract.
	pad  Block
	seed [16]byte
}

// New builds an engine. It panics on an invalid key length, which is a
// configuration error, not a runtime condition.
func New(cfg Config) *Engine {
	key := cfg.Key
	if key == nil {
		key = []byte("metaleak-aes-key")
	}
	if len(key) != 16 {
		panic("crypto: AES key must be 16 bytes")
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		panic("crypto: " + err.Error())
	}
	e := &Engine{cfg: cfg, aes: blk}
	// Derive the GHASH subkey H = AES_k(0^128), as in GCM.
	var zero, hb [16]byte
	blk.Encrypt(hb[:], zero[:])
	if cfg.MACKey != nil {
		if len(cfg.MACKey) != 16 {
			panic("crypto: MAC key must be 16 bytes")
		}
		copy(hb[:], cfg.MACKey)
	}
	e.h[0] = binary.BigEndian.Uint64(hb[0:8])
	e.h[1] = binary.BigEndian.Uint64(hb[8:16])
	e.tbl.init(e.h)
	e.fastK = e.h[0] ^ e.h[1] | 1
	return e
}

// AESLatency returns the modelled latency of one OTP generation.
func (e *Engine) AESLatency() arch.Cycles { return e.cfg.AESLatency }

// HashLatency returns the modelled latency of one MAC or node hash.
func (e *Engine) HashLatency() arch.Cycles { return e.cfg.HashLatency }

// otp fills the engine's pad scratch with the 64-byte one-time pad for
// (block address, counter) and returns it. Each 16-byte chunk uses
// seed = chunkAddr ‖ ctr so that pads are unique both spatially (address)
// and temporally (counter), per §IV-A. The counter half of the seed is
// written once for the whole cache-line fill; only the chunk-address half
// changes between the four AES invocations.
func (e *Engine) otp(b arch.BlockID, ctr uint64) *Block {
	pad := &e.pad
	if e.cfg.Fast {
		for ck := 0; ck < chunksPerBlock; ck++ {
			v := mix(uint64(b)<<2|uint64(ck), ctr, e.fastK)
			w := mix(ctr, uint64(b)<<2|uint64(ck), e.fastK)
			binary.LittleEndian.PutUint64(pad[ck*16:], v)
			binary.LittleEndian.PutUint64(pad[ck*16+8:], w)
		}
		return pad
	}
	seed := e.seed[:]
	binary.BigEndian.PutUint64(seed[8:16], ctr)
	base := uint64(b) << 2
	for ck := 0; ck < chunksPerBlock; ck++ {
		binary.BigEndian.PutUint64(seed[0:8], base|uint64(ck))
		e.aes.Encrypt(pad[ck*16:(ck+1)*16], seed)
	}
	return pad
}

// EncryptTo produces the ciphertext of *plain into *dst
// (c = p XOR Enc_k(seed)). dst and plain may alias each other but must
// not alias the engine's internal pad (callers outside this package
// cannot). This is the allocation-free path the controller uses.
func (e *Engine) EncryptTo(dst, plain *Block, b arch.BlockID, ctr uint64) {
	pad := e.otp(b, ctr)
	for i := range dst {
		dst[i] = plain[i] ^ pad[i]
	}
}

// DecryptTo inverts EncryptTo (counter-mode encryption is an involution
// given the same seed).
func (e *Engine) DecryptTo(dst, ct *Block, b arch.BlockID, ctr uint64) {
	e.EncryptTo(dst, ct, b, ctr)
}

// Encrypt is the by-value convenience form of EncryptTo.
func (e *Engine) Encrypt(plain Block, b arch.BlockID, ctr uint64) Block {
	var out Block
	e.EncryptTo(&out, &plain, b, ctr)
	return out
}

// Decrypt inverts Encrypt.
func (e *Engine) Decrypt(ct Block, b arch.BlockID, ctr uint64) Block {
	return e.Encrypt(ct, b, ctr)
}

// MAC computes the 64-bit authentication tag over the ciphertext block,
// its address, and its counter: MAC_k(C, ctr, addr_b) as in the BMT design
// of Rogers et al. that the paper's HT configuration follows.
func (e *Engine) MAC(ct Block, b arch.BlockID, ctr uint64) uint64 {
	return e.MACOf(&ct, b, ctr)
}

// MACOf is MAC without the 64-byte argument copy — the form the memory
// controller uses on its stored ciphertext blocks.
func (e *Engine) MACOf(ct *Block, b arch.BlockID, ctr uint64) uint64 {
	if e.cfg.Fast {
		h := e.fastK
		for i := 0; i < arch.BlockSize; i += 8 {
			h = mix(h, binary.LittleEndian.Uint64(ct[i:]), e.fastK)
		}
		// Absorb address and counter as separate full-width words. Folding
		// them as b^(ctr<<1) discarded the counter's MSB — exactly where
		// MoC/GC epoch bits live — so two seeds differing only in bit 63
		// collided and fast-mode tamper checks went blind to re-keys.
		return mix(mix(h, uint64(b), e.fastK), ctr, e.fastK)
	}
	var g ghash
	g.init(&e.tbl)
	for ck := 0; ck < chunksPerBlock; ck++ {
		g.update(binary.BigEndian.Uint64(ct[ck*16:]), binary.BigEndian.Uint64(ct[ck*16+8:]))
	}
	g.update(uint64(b), ctr)
	return g.sum()
}

// HashBytes computes the 64-bit node hash used by integrity trees over an
// arbitrary byte string (tree node contents, child hash concatenations).
func (e *Engine) HashBytes(data []byte) uint64 {
	if e.cfg.Fast {
		h := e.fastK ^ 0x9e3779b97f4a7c15
		for len(data) >= 8 {
			h = mix(h, binary.LittleEndian.Uint64(data), e.fastK)
			data = data[8:]
		}
		var tail uint64
		for i, c := range data {
			tail |= uint64(c) << (8 * i)
		}
		return mix(h, tail^uint64(len(data)), e.fastK)
	}
	n := len(data)
	var g ghash
	g.init(&e.tbl)
	for len(data) >= 16 {
		g.update(binary.BigEndian.Uint64(data), binary.BigEndian.Uint64(data[8:]))
		data = data[16:]
	}
	if len(data) > 0 {
		var pad [16]byte
		copy(pad[:], data)
		g.update(binary.BigEndian.Uint64(pad[:8]), binary.BigEndian.Uint64(pad[8:]))
	}
	// Length finalization (as in GCM): distinguishes zero-padded inputs of
	// different lengths and prevents the all-zero fixed point.
	g.update(0x4d65746132303234, uint64(n))
	return g.sum()
}

// mix is a fast 64-bit keyed mixer (murmur-style) used in Fast mode.
func mix(a, b, k uint64) uint64 {
	x := a ^ b*0xff51afd7ed558ccd ^ k
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 29
	return x
}
