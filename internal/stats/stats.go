// Package stats provides the small statistics toolkit the experiments
// use: summaries (mean/percentiles), latency histograms with ASCII
// rendering (the textual analogue of the paper's distribution figures),
// and two-class separation metrics for timing channels.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"metaleak/internal/arch"
)

// Sample is a collection of cycle measurements.
type Sample []arch.Cycles

// Add appends a measurement.
func (s *Sample) Add(v arch.Cycles) { *s = append(*s, v) }

// Len returns the number of measurements.
func (s Sample) Len() int { return len(s) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s Sample) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation.
func (s Sample) Std() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s {
		d := float64(v) - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// sorted returns an ascending copy.
func (s Sample) sorted() Sample {
	out := append(Sample(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-quantile (p in [0,1]) by nearest rank.
func (s Sample) Percentile(p float64) arch.Cycles {
	if len(s) == 0 {
		return 0
	}
	sorted := s.sorted()
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Min returns the smallest measurement.
func (s Sample) Min() arch.Cycles { return s.Percentile(0) }

// Max returns the largest measurement.
func (s Sample) Max() arch.Cycles { return s.Percentile(1) }

// Summary renders "n=.. min=.. mean=.. p95=.. max=..".
func (s Sample) Summary() string {
	return fmt.Sprintf("n=%d min=%d mean=%.0f p95=%d max=%d",
		len(s), s.Min(), s.Mean(), s.Percentile(0.95), s.Max())
}

// Histogram bins a sample into fixed-width buckets.
type Histogram struct {
	Lo, Hi arch.Cycles
	Width  arch.Cycles
	Counts []int
	Total  int
}

// NewHistogram bins the sample into n buckets spanning its range.
func NewHistogram(s Sample, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	h := &Histogram{Counts: make([]int, n)}
	if len(s) == 0 {
		h.Width = 1
		return h
	}
	h.Lo, h.Hi = s.Min(), s.Max()
	span := h.Hi - h.Lo + 1
	h.Width = (span + arch.Cycles(n) - 1) / arch.Cycles(n)
	if h.Width == 0 {
		h.Width = 1
	}
	for _, v := range s {
		i := int((v - h.Lo) / h.Width)
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// ASCII renders the histogram as one bar line per bucket, the textual
// analogue of the paper's latency-distribution plots.
func (h *Histogram) ASCII(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + arch.Cycles(i)*h.Width
		bar := strings.Repeat("#", c*barWidth/max)
		fmt.Fprintf(&sb, "%6d..%-6d |%-*s| %d\n", lo, lo+h.Width-1, barWidth, bar, c)
	}
	return sb.String()
}

// Separation quantifies how distinguishable two latency classes are.
type Separation struct {
	FastMean, SlowMean float64
	Gap                float64 // slow mean - fast mean
	// Overlap is the fraction of samples on the wrong side of the midpoint
	// threshold — the error rate of the naive classifier.
	Overlap float64
	// Threshold is the quartile-based split point.
	Threshold arch.Cycles
}

// Separate computes the separation between a fast and a slow class.
func Separate(fast, slow Sample) Separation {
	sep := Separation{FastMean: fast.Mean(), SlowMean: slow.Mean()}
	sep.Gap = sep.SlowMean - sep.FastMean
	sep.Threshold = (fast.Percentile(0.75) + slow.Percentile(0.25)) / 2
	wrong := 0
	for _, v := range fast {
		if v >= sep.Threshold {
			wrong++
		}
	}
	for _, v := range slow {
		if v < sep.Threshold {
			wrong++
		}
	}
	if n := len(fast) + len(slow); n > 0 {
		sep.Overlap = float64(wrong) / float64(n)
	}
	return sep
}

// Accuracy is 1 - Overlap: the naive threshold classifier's accuracy.
func (s Separation) Accuracy() float64 { return 1 - s.Overlap }

// Mergeable accumulators ----------------------------------------------------
//
// The spec/trial/merge harness needs per-trial summaries that combine
// associatively, so an experiment's Merge step can fold any partition
// of its trials in trial-index order without ever touching raw sample
// slices. Counter, MeanVar, and FixedHistogram are those summaries:
// Merge(a, Merge(b, c)) == Merge(Merge(a, b), c) exactly (integer
// state) or to floating-point associativity (MeanVar, which uses the
// Chan et al. pairwise update).

// Counter is a mergeable hit counter: N observations, Hits positive.
type Counter struct {
	N    int
	Hits int
}

// Observe records one boolean observation.
func (c *Counter) Observe(hit bool) {
	c.N++
	if hit {
		c.Hits++
	}
}

// Merge combines two counters.
func (c Counter) Merge(o Counter) Counter {
	return Counter{N: c.N + o.N, Hits: c.Hits + o.Hits}
}

// Rate returns Hits/N (0 for an empty counter).
func (c Counter) Rate() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.N)
}

// MeanVar is a mergeable mean/variance accumulator (count, mean, and
// the centered second moment M2), combining with the parallel update of
// Chan, Golub & LeVeque.
type MeanVar struct {
	N    int
	Mean float64
	M2   float64
}

// Add folds one value in (Welford's online update).
func (m *MeanVar) Add(v float64) {
	m.N++
	d := v - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (v - m.Mean)
}

// AddCycles folds one cycle measurement in.
func (m *MeanVar) AddCycles(v arch.Cycles) { m.Add(float64(v)) }

// Merge combines two accumulators as if every value had been added to
// one.
func (m MeanVar) Merge(o MeanVar) MeanVar {
	if m.N == 0 {
		return o
	}
	if o.N == 0 {
		return m
	}
	n := m.N + o.N
	d := o.Mean - m.Mean
	return MeanVar{
		N:    n,
		Mean: m.Mean + d*float64(o.N)/float64(n),
		M2:   m.M2 + o.M2 + d*d*float64(m.N)*float64(o.N)/float64(n),
	}
}

// Variance returns the population variance (0 for N < 2).
func (m MeanVar) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N)
}

// Std returns the population standard deviation.
func (m MeanVar) Std() float64 { return math.Sqrt(m.Variance()) }

// FixedHistogram is a mergeable histogram over a fixed bucket geometry
// (unlike Histogram, whose buckets are fitted to one sample's range and
// therefore cannot be combined). Values below Lo clamp into the first
// bucket; values at or beyond the last edge clamp into the last.
type FixedHistogram struct {
	Lo     arch.Cycles
	Width  arch.Cycles
	Counts []int
	Total  int
}

// NewFixedHistogram builds an empty histogram of n buckets of the given
// width starting at lo.
func NewFixedHistogram(lo, width arch.Cycles, n int) *FixedHistogram {
	if n < 1 {
		n = 1
	}
	if width < 1 {
		width = 1
	}
	return &FixedHistogram{Lo: lo, Width: width, Counts: make([]int, n)}
}

// Add bins one measurement.
func (h *FixedHistogram) Add(v arch.Cycles) {
	i := 0
	if v > h.Lo {
		i = int((v - h.Lo) / h.Width)
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Merge folds another histogram with identical geometry into this one.
func (h *FixedHistogram) Merge(o *FixedHistogram) error {
	if o.Lo != h.Lo || o.Width != h.Width || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging histograms with different geometry (lo %d/%d width %d/%d buckets %d/%d)",
			h.Lo, o.Lo, h.Width, o.Width, len(h.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Total += o.Total
	return nil
}

// ASCII renders the histogram like Histogram.ASCII.
func (h *FixedHistogram) ASCII(barWidth int) string {
	return (&Histogram{Lo: h.Lo, Width: h.Width, Counts: h.Counts, Total: h.Total}).ASCII(barWidth)
}

// BitErrorRate compares two bit strings of equal meaning.
func BitErrorRate(got, want []bool) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	errs := 0
	for i := 0; i < n; i++ {
		var g, w bool
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			errs++
		}
	}
	return float64(errs) / float64(n)
}
