// Package stats provides the small statistics toolkit the experiments
// use: summaries (mean/percentiles), latency histograms with ASCII
// rendering (the textual analogue of the paper's distribution figures),
// and two-class separation metrics for timing channels.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"metaleak/internal/arch"
)

// Sample is a collection of cycle measurements.
type Sample []arch.Cycles

// Add appends a measurement.
func (s *Sample) Add(v arch.Cycles) { *s = append(*s, v) }

// Len returns the number of measurements.
func (s Sample) Len() int { return len(s) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s Sample) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation.
func (s Sample) Std() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s {
		d := float64(v) - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// sorted returns an ascending copy.
func (s Sample) sorted() Sample {
	out := append(Sample(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-quantile (p in [0,1]) by nearest rank.
func (s Sample) Percentile(p float64) arch.Cycles {
	if len(s) == 0 {
		return 0
	}
	sorted := s.sorted()
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Min returns the smallest measurement.
func (s Sample) Min() arch.Cycles { return s.Percentile(0) }

// Max returns the largest measurement.
func (s Sample) Max() arch.Cycles { return s.Percentile(1) }

// Summary renders "n=.. min=.. mean=.. p95=.. max=..".
func (s Sample) Summary() string {
	return fmt.Sprintf("n=%d min=%d mean=%.0f p95=%d max=%d",
		len(s), s.Min(), s.Mean(), s.Percentile(0.95), s.Max())
}

// Histogram bins a sample into fixed-width buckets.
type Histogram struct {
	Lo, Hi arch.Cycles
	Width  arch.Cycles
	Counts []int
	Total  int
}

// NewHistogram bins the sample into n buckets spanning its range.
func NewHistogram(s Sample, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	h := &Histogram{Counts: make([]int, n)}
	if len(s) == 0 {
		h.Width = 1
		return h
	}
	h.Lo, h.Hi = s.Min(), s.Max()
	span := h.Hi - h.Lo + 1
	h.Width = (span + arch.Cycles(n) - 1) / arch.Cycles(n)
	if h.Width == 0 {
		h.Width = 1
	}
	for _, v := range s {
		i := int((v - h.Lo) / h.Width)
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// ASCII renders the histogram as one bar line per bucket, the textual
// analogue of the paper's latency-distribution plots.
func (h *Histogram) ASCII(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + arch.Cycles(i)*h.Width
		bar := strings.Repeat("#", c*barWidth/max)
		fmt.Fprintf(&sb, "%6d..%-6d |%-*s| %d\n", lo, lo+h.Width-1, barWidth, bar, c)
	}
	return sb.String()
}

// Separation quantifies how distinguishable two latency classes are.
type Separation struct {
	FastMean, SlowMean float64
	Gap                float64 // slow mean - fast mean
	// Overlap is the fraction of samples on the wrong side of the midpoint
	// threshold — the error rate of the naive classifier.
	Overlap float64
	// Threshold is the quartile-based split point.
	Threshold arch.Cycles
}

// Separate computes the separation between a fast and a slow class.
func Separate(fast, slow Sample) Separation {
	sep := Separation{FastMean: fast.Mean(), SlowMean: slow.Mean()}
	sep.Gap = sep.SlowMean - sep.FastMean
	sep.Threshold = (fast.Percentile(0.75) + slow.Percentile(0.25)) / 2
	wrong := 0
	for _, v := range fast {
		if v >= sep.Threshold {
			wrong++
		}
	}
	for _, v := range slow {
		if v < sep.Threshold {
			wrong++
		}
	}
	if n := len(fast) + len(slow); n > 0 {
		sep.Overlap = float64(wrong) / float64(n)
	}
	return sep
}

// Accuracy is 1 - Overlap: the naive threshold classifier's accuracy.
func (s Separation) Accuracy() float64 { return 1 - s.Overlap }

// BitErrorRate compares two bit strings of equal meaning.
func BitErrorRate(got, want []bool) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	errs := 0
	for i := 0; i < n; i++ {
		var g, w bool
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			errs++
		}
	}
	return float64(errs) / float64(n)
}
