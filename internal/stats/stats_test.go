package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []arch.Cycles{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Mean() != 25 {
		t.Fatalf("mean %f", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 40 {
		t.Fatal("min/max wrong")
	}
	if s.Percentile(0.5) != 20 && s.Percentile(0.5) != 30 {
		t.Fatalf("median %d", s.Percentile(0.5))
	}
	if !strings.Contains(s.Summary(), "n=4") {
		t.Fatal("summary missing count")
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Std() != 0 {
		t.Fatal("empty sample not zero-valued")
	}
	h := NewHistogram(s, 5)
	if h.Total != 0 {
		t.Fatal("empty histogram has entries")
	}
	_ = h.ASCII(10)
}

func TestStd(t *testing.T) {
	s := Sample{10, 10, 10, 10}
	if s.Std() != 0 {
		t.Fatal("constant sample has nonzero std")
	}
	s2 := Sample{0, 20}
	if s2.Std() != 10 {
		t.Fatalf("std = %f want 10", s2.Std())
	}
}

func TestHistogramBinning(t *testing.T) {
	s := Sample{0, 1, 2, 50, 51, 99}
	h := NewHistogram(s, 10)
	if h.Total != len(s) {
		t.Fatalf("total %d", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(s) {
		t.Fatal("counts do not sum to total")
	}
	art := h.ASCII(20)
	if !strings.Contains(art, "#") {
		t.Fatal("no bars rendered")
	}
}

func TestQuickHistogramConserves(t *testing.T) {
	f := func(raw []uint16, nbRaw uint8) bool {
		var s Sample
		for _, v := range raw {
			s.Add(arch.Cycles(v))
		}
		nb := int(nbRaw)%20 + 1
		h := NewHistogram(s, nb)
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(s) && h.Total == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparationCleanClasses(t *testing.T) {
	fast := Sample{100, 105, 110, 95}
	slow := Sample{300, 310, 295, 305}
	sep := Separate(fast, slow)
	if sep.Accuracy() != 1 {
		t.Fatalf("clean classes accuracy %f", sep.Accuracy())
	}
	if sep.Gap < 190 || sep.Gap > 210 {
		t.Fatalf("gap %f", sep.Gap)
	}
	if sep.Threshold <= 110 || sep.Threshold >= 295 {
		t.Fatalf("threshold %d outside gap", sep.Threshold)
	}
}

func TestSeparationOverlappingClasses(t *testing.T) {
	fast := Sample{100, 200, 100, 200}
	slow := Sample{100, 200, 100, 200}
	sep := Separate(fast, slow)
	if sep.Accuracy() > 0.8 {
		t.Fatalf("identical classes should not separate: %f", sep.Accuracy())
	}
}

func TestBitErrorRate(t *testing.T) {
	if BitErrorRate([]bool{true, false}, []bool{true, false}) != 0 {
		t.Fatal("identical bits nonzero BER")
	}
	if BitErrorRate([]bool{true, true}, []bool{true, false}) != 0.5 {
		t.Fatal("half-wrong not 0.5")
	}
	if BitErrorRate([]bool{true}, []bool{true, true}) != 0.5 {
		t.Fatal("length mismatch not counted")
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	for i := 0; i < 10; i++ {
		a.Observe(i%2 == 0)
	}
	for i := 0; i < 6; i++ {
		b.Observe(true)
	}
	m := a.Merge(b)
	if m.N != 16 || m.Hits != 11 {
		t.Fatalf("merged counter %+v", m)
	}
	if got := m.Rate(); got != 11.0/16.0 {
		t.Fatalf("rate %v", got)
	}
	if (Counter{}).Rate() != 0 {
		t.Fatal("empty counter rate not 0")
	}
}

func TestMeanVarMergeMatchesSequential(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var whole MeanVar
	for _, v := range vals {
		whole.Add(v)
	}
	// Every split point must merge back to the sequential accumulator.
	for cut := 0; cut <= len(vals); cut++ {
		var left, right MeanVar
		for _, v := range vals[:cut] {
			left.Add(v)
		}
		for _, v := range vals[cut:] {
			right.Add(v)
		}
		m := left.Merge(right)
		if m.N != whole.N {
			t.Fatalf("cut %d: N %d != %d", cut, m.N, whole.N)
		}
		if math.Abs(m.Mean-whole.Mean) > 1e-9 || math.Abs(m.Variance()-whole.Variance()) > 1e-9 {
			t.Fatalf("cut %d: merged mean/var %v/%v != %v/%v",
				cut, m.Mean, m.Variance(), whole.Mean, whole.Variance())
		}
	}
}

func TestMeanVarMergeAssociative(t *testing.T) {
	mk := func(vals ...float64) MeanVar {
		var m MeanVar
		for _, v := range vals {
			m.Add(v)
		}
		return m
	}
	a, b, c := mk(1, 2), mk(10, 20, 30), mk(5)
	l := a.Merge(b).Merge(c)
	r := a.Merge(b.Merge(c))
	if l.N != r.N || math.Abs(l.Mean-r.Mean) > 1e-9 || math.Abs(l.M2-r.M2) > 1e-6 {
		t.Fatalf("associativity broken: %+v vs %+v", l, r)
	}
}

func TestFixedHistogramMerge(t *testing.T) {
	a := NewFixedHistogram(100, 10, 5)
	b := NewFixedHistogram(100, 10, 5)
	for _, v := range []arch.Cycles{50, 105, 120, 1000} {
		a.Add(v) // 50 clamps low, 1000 clamps high
	}
	b.Add(115)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total != 5 {
		t.Fatalf("total %d", a.Total)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if a.Counts[i] != c {
			t.Fatalf("bucket %d: %d != %d (%v)", i, a.Counts[i], c, a.Counts)
		}
	}
	if a.ASCII(10) == "" {
		t.Fatal("empty ASCII rendering")
	}
	bad := NewFixedHistogram(0, 10, 5)
	if err := a.Merge(bad); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
