package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []arch.Cycles{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Mean() != 25 {
		t.Fatalf("mean %f", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 40 {
		t.Fatal("min/max wrong")
	}
	if s.Percentile(0.5) != 20 && s.Percentile(0.5) != 30 {
		t.Fatalf("median %d", s.Percentile(0.5))
	}
	if !strings.Contains(s.Summary(), "n=4") {
		t.Fatal("summary missing count")
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Std() != 0 {
		t.Fatal("empty sample not zero-valued")
	}
	h := NewHistogram(s, 5)
	if h.Total != 0 {
		t.Fatal("empty histogram has entries")
	}
	_ = h.ASCII(10)
}

func TestStd(t *testing.T) {
	s := Sample{10, 10, 10, 10}
	if s.Std() != 0 {
		t.Fatal("constant sample has nonzero std")
	}
	s2 := Sample{0, 20}
	if s2.Std() != 10 {
		t.Fatalf("std = %f want 10", s2.Std())
	}
}

func TestHistogramBinning(t *testing.T) {
	s := Sample{0, 1, 2, 50, 51, 99}
	h := NewHistogram(s, 10)
	if h.Total != len(s) {
		t.Fatalf("total %d", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(s) {
		t.Fatal("counts do not sum to total")
	}
	art := h.ASCII(20)
	if !strings.Contains(art, "#") {
		t.Fatal("no bars rendered")
	}
}

func TestQuickHistogramConserves(t *testing.T) {
	f := func(raw []uint16, nbRaw uint8) bool {
		var s Sample
		for _, v := range raw {
			s.Add(arch.Cycles(v))
		}
		nb := int(nbRaw)%20 + 1
		h := NewHistogram(s, nb)
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(s) && h.Total == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparationCleanClasses(t *testing.T) {
	fast := Sample{100, 105, 110, 95}
	slow := Sample{300, 310, 295, 305}
	sep := Separate(fast, slow)
	if sep.Accuracy() != 1 {
		t.Fatalf("clean classes accuracy %f", sep.Accuracy())
	}
	if sep.Gap < 190 || sep.Gap > 210 {
		t.Fatalf("gap %f", sep.Gap)
	}
	if sep.Threshold <= 110 || sep.Threshold >= 295 {
		t.Fatalf("threshold %d outside gap", sep.Threshold)
	}
}

func TestSeparationOverlappingClasses(t *testing.T) {
	fast := Sample{100, 200, 100, 200}
	slow := Sample{100, 200, 100, 200}
	sep := Separate(fast, slow)
	if sep.Accuracy() > 0.8 {
		t.Fatalf("identical classes should not separate: %f", sep.Accuracy())
	}
}

func TestBitErrorRate(t *testing.T) {
	if BitErrorRate([]bool{true, false}, []bool{true, false}) != 0 {
		t.Fatal("identical bits nonzero BER")
	}
	if BitErrorRate([]bool{true, true}, []bool{true, false}) != 0.5 {
		t.Fatal("half-wrong not 0.5")
	}
	if BitErrorRate([]bool{true}, []bool{true, true}) != 0.5 {
		t.Fatal("length mismatch not counted")
	}
}
