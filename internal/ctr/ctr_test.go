package ctr

import (
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func TestSCIncrementAndFusedValue(t *testing.T) {
	s := NewSC(SCConfig{})
	b := arch.PageID(3).Block(5)
	if v := s.Value(b); v != 0 {
		t.Fatalf("initial value = %d", v)
	}
	v, ov := s.Increment(b)
	if ov != nil {
		t.Fatal("unexpected overflow on first write")
	}
	if v != 1 || s.Value(b) != 1 {
		t.Fatalf("after one write value = %d", v)
	}
	// Another block in the same page shares the major but not the minor.
	b2 := arch.PageID(3).Block(6)
	if s.Value(b2) != 0 {
		t.Fatalf("sibling minor affected: %d", s.Value(b2))
	}
}

func TestSCOverflowReencryptsPage(t *testing.T) {
	s := NewSC(SCConfig{})
	b := arch.PageID(7).Block(0)
	sibling := arch.PageID(7).Block(1)
	s.Increment(sibling) // sibling minor = 1
	oldSibling := s.Value(sibling)
	var ov *Overflow
	for i := uint64(0); i <= s.MinorMax(); i++ {
		_, ov = s.Increment(b)
	}
	if ov == nil {
		t.Fatalf("no overflow after %d writes", s.MinorMax()+1)
	}
	if ov.GroupSize != arch.BlocksPerPage {
		t.Fatalf("group size = %d", ov.GroupSize)
	}
	if len(ov.Reencrypt) != arch.BlocksPerPage-1 {
		t.Fatalf("re-encrypt list = %d", len(ov.Reencrypt))
	}
	// Sibling must appear with its old fused value and its new one.
	found := false
	for _, ch := range ov.Reencrypt {
		if ch.Block == sibling {
			found = true
			if ch.Old != oldSibling {
				t.Fatalf("sibling old value %d != %d", ch.Old, oldSibling)
			}
			if ch.New != s.Value(sibling) {
				t.Fatalf("sibling new value %d != %d", ch.New, s.Value(sibling))
			}
		}
	}
	if !found {
		t.Fatal("sibling missing from re-encryption group")
	}
	// Post-overflow: major advanced, triggering block's minor is 1.
	if s.MinorValue(b) != 1 {
		t.Fatalf("triggering minor = %d", s.MinorValue(b))
	}
	if s.Value(b)>>7 != 1 {
		t.Fatalf("major not incremented: fused=%d", s.Value(b))
	}
}

func TestSCValuesNeverRepeatAcrossOverflow(t *testing.T) {
	// Seed uniqueness (the whole point of counters): the fused value after
	// overflow must never equal any pre-overflow value of that block.
	s := NewSC(SCConfig{})
	b := arch.PageID(1).Block(0)
	seen := map[uint64]bool{s.Value(b): true}
	for i := 0; i < 300; i++ {
		v, _ := s.Increment(b)
		if seen[v] {
			t.Fatalf("fused counter value %d repeated at write %d", v, i)
		}
		seen[v] = true
	}
}

func TestSCBlockBytesPacking(t *testing.T) {
	s := NewSC(SCConfig{})
	p := arch.PageID(9)
	s.Increment(p.Block(0))
	base := s.BlockBytes(s.CounterBlock(p.Block(0)))
	s.Increment(p.Block(63))
	after := s.BlockBytes(s.CounterBlock(p.Block(0)))
	if base == after {
		t.Fatal("BlockBytes insensitive to minor 63")
	}
	// Deterministic.
	if after != s.BlockBytes(s.CounterBlock(p.Block(0))) {
		t.Fatal("BlockBytes not deterministic")
	}
}

func TestSCCounterBlockMapping(t *testing.T) {
	s := NewSC(SCConfig{})
	b := arch.PageID(1234).Block(17)
	cb := s.CounterBlock(b)
	if !cb.IsCounter() {
		t.Fatal("counter block not in counter region")
	}
	if s.PageOfCounterBlock(cb) != 1234 {
		t.Fatal("round trip page mapping failed")
	}
	blocks := s.DataBlocksOf(cb)
	if len(blocks) != arch.BlocksPerPage || blocks[17] != b {
		t.Fatal("DataBlocksOf wrong")
	}
}

func TestMoCIndependentCounters(t *testing.T) {
	m := NewMoC(MoCConfig{Bits: 8})
	b1, b2 := arch.BlockID(0), arch.BlockID(1)
	m.Increment(b1)
	if m.Value(b2) != 0 {
		t.Fatal("MoC counters not independent")
	}
}

func TestMoCOverflowRekeysMemory(t *testing.T) {
	m := NewMoC(MoCConfig{Bits: 4})
	other := arch.BlockID(99)
	m.Increment(other)
	b := arch.BlockID(5)
	var ov *Overflow
	for i := 0; i < 16; i++ {
		_, ov = m.Increment(b)
	}
	if ov == nil {
		t.Fatal("no overflow after 2^4 writes")
	}
	// The other touched block must be in the re-key group with a changed
	// effective seed.
	found := false
	for _, ch := range ov.Reencrypt {
		if ch.Block == other {
			found = true
			if ch.Old == ch.New {
				t.Fatal("re-key did not change seed")
			}
		}
	}
	if !found {
		t.Fatal("whole-memory group missing touched block")
	}
}

func TestGCSharedCounterAdvances(t *testing.T) {
	g := NewGC(GCConfig{Bits: 8})
	b1, b2 := arch.BlockID(1), arch.BlockID(2)
	v1, _ := g.Increment(b1)
	v2, _ := g.Increment(b2)
	if v2 != v1+1 {
		t.Fatalf("global counter not shared: %d then %d", v1, v2)
	}
	if g.Value(b1) != v1 {
		t.Fatal("snapshot lost")
	}
}

func TestGCOverflow(t *testing.T) {
	g := NewGC(GCConfig{Bits: 4})
	a := arch.BlockID(1)
	g.Increment(a)
	oldA := g.Value(a)
	b := arch.BlockID(2)
	var ov *Overflow
	for i := 0; i < 20 && ov == nil; i++ {
		_, ov = g.Increment(b)
	}
	if ov == nil {
		t.Fatal("global counter never overflowed")
	}
	for _, ch := range ov.Reencrypt {
		if ch.Block == a && ch.Old != oldA {
			t.Fatalf("old seed for a = %d want %d", ch.Old, oldA)
		}
	}
	if g.Value(a) == oldA {
		t.Fatal("re-key left a's effective seed unchanged")
	}
}

// Property: for every scheme, Increment yields the value Value then
// reports, and values are strictly fresh (never equal to the immediately
// preceding value of that block).
func TestQuickSchemesFreshness(t *testing.T) {
	schemes := []Scheme{
		NewSC(SCConfig{}),
		NewMoC(MoCConfig{Bits: 16}),
		NewGC(GCConfig{Bits: 20}),
	}
	for _, s := range schemes {
		s := s
		f := func(raw uint16) bool {
			b := arch.BlockID(raw)
			before := s.Value(b)
			v, _ := s.Increment(b)
			return v == s.Value(b) && v != before
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// Property: CounterBlock and DataBlocksOf are mutually consistent for all
// schemes.
func TestQuickCounterBlockRoundTrip(t *testing.T) {
	schemes := []Scheme{NewSC(SCConfig{}), NewMoC(MoCConfig{}), NewGC(GCConfig{})}
	for _, s := range schemes {
		s := s
		f := func(raw uint16) bool {
			b := arch.BlockID(raw)
			cb := s.CounterBlock(b)
			for _, db := range s.DataBlocksOf(cb) {
				if db == b {
					return true
				}
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
