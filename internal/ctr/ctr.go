// Package ctr implements the encryption counter schemes of §IV-A of the
// paper: Global Counter (GC), Monolithic Counter (MoC), and Split Counter
// (SC). Each scheme answers three questions for the secure memory
// controller:
//
//   - which metadata block holds the counter for a data block (the
//     indirection MetaLeak-T exploits),
//   - what seed value encrypts the block right now, and
//   - what happens on a write (Algorithm 1): increment, detect overflow,
//     and name the counter-sharing group G that must be re-encrypted.
//
// Counter state is authoritative here (it models the memory contents);
// whether a counter *block* is on-chip is tracked by the metadata cache in
// the controller.
package ctr

import (
	"encoding/binary"
	"sort"

	"metaleak/internal/arch"
)

// Change records one block's counter transition during overflow handling,
// so the controller can decrypt with the old seed and re-encrypt with the
// new one (Algorithm 1 line 5).
type Change struct {
	Block arch.BlockID
	Old   uint64
	New   uint64
}

// Overflow describes the fallout of an Increment that overflowed.
type Overflow struct {
	// Reencrypt lists every block in the counter-sharing group other than
	// the written block, with old and new seed values.
	Reencrypt []Change
	// GroupSize is len(Reencrypt)+1 — the paper's |G|.
	GroupSize int
}

// Scheme is the interface the memory controller programs against.
type Scheme interface {
	// Name returns "GC", "MoC" or "SC".
	Name() string
	// CounterBlock returns the metadata block holding b's counter.
	CounterBlock(b arch.BlockID) arch.BlockID
	// Value returns the seed value that currently encrypts b.
	Value(b arch.BlockID) uint64
	// Increment advances the counter for a write to b, returning the new
	// seed value and, if the counter overflowed, the re-encryption work.
	Increment(b arch.BlockID) (newVal uint64, ov *Overflow)
	// BlockBytes serializes the counter block's contents (for hashing and
	// for integrity verification by the tree). cb must be a block returned
	// by CounterBlock.
	BlockBytes(cb arch.BlockID) [arch.BlockSize]byte
	// DataBlocksOf enumerates the data blocks whose counters live in the
	// given counter block (the reverse of CounterBlock). Used by attack
	// address arithmetic.
	DataBlocksOf(cb arch.BlockID) []arch.BlockID
	// CorruptCounter flips counter state covering b (tamper injection:
	// physical corruption of the counter block in memory): the per-block
	// minor/counter low bit, or — with major set — the shared major
	// counter / a high counter bit. Both Value(b) and
	// BlockBytes(CounterBlock(b)) change, so the data MAC and the
	// integrity tree each have something to catch.
	CorruptCounter(b arch.BlockID, major bool)
}

// counterBase is CounterBase expressed as a BlockID.
func counterBase() arch.BlockID { return arch.CounterBase.Block() }

// ---------------------------------------------------------------------------
// Split Counter (SC): one 64-bit major counter and 64 7-bit minor counters
// per data page, packed into exactly one 64-byte counter block (Table I).
// ---------------------------------------------------------------------------

// SCConfig parameterizes the split-counter scheme.
type SCConfig struct {
	MinorBits uint // 7 in Table I
}

// pageCounters is the state of one counter block. serial memoizes the
// packed BlockBytes serialization — the 7-bit bit-packing is the single
// hottest piece of counter arithmetic on the write path, and the packed
// form only changes when a counter does (serialOK is cleared on every
// mutation).
type pageCounters struct {
	major    uint64
	minors   [arch.BlocksPerPage]uint16
	serial   [arch.BlockSize]byte
	serialOK bool
}

// SC is the split-counter scheme.
type SC struct {
	cfg   SCConfig
	pages map[arch.PageID]*pageCounters
}

// NewSC builds a split-counter scheme. MinorBits of 0 selects the Table I
// default of 7.
func NewSC(cfg SCConfig) *SC {
	if cfg.MinorBits == 0 {
		cfg.MinorBits = 7
	}
	return &SC{cfg: cfg, pages: make(map[arch.PageID]*pageCounters)}
}

// Name implements Scheme.
func (s *SC) Name() string { return "SC" }

// MinorMax returns the saturation value of a minor counter (2^n - 1).
func (s *SC) MinorMax() uint64 { return 1<<s.cfg.MinorBits - 1 }

func (s *SC) page(p arch.PageID) *pageCounters {
	pc := s.pages[p]
	if pc == nil {
		pc = &pageCounters{}
		s.pages[p] = pc
	}
	return pc
}

// CounterBlock implements Scheme: one counter block per data page.
func (s *SC) CounterBlock(b arch.BlockID) arch.BlockID {
	return counterBase() + arch.BlockID(b.Page())
}

// PageOfCounterBlock inverts CounterBlock.
func (s *SC) PageOfCounterBlock(cb arch.BlockID) arch.PageID {
	return arch.PageID(cb - counterBase())
}

// DataBlocksOf implements Scheme.
func (s *SC) DataBlocksOf(cb arch.BlockID) []arch.BlockID {
	p := s.PageOfCounterBlock(cb)
	out := make([]arch.BlockID, arch.BlocksPerPage)
	for i := range out {
		out[i] = p.Block(i)
	}
	return out
}

func (s *SC) fused(major uint64, minor uint16) uint64 {
	return major<<s.cfg.MinorBits | uint64(minor)
}

// Value implements Scheme: the fused counter major‖minor.
func (s *SC) Value(b arch.BlockID) uint64 {
	pc := s.page(b.Page())
	return s.fused(pc.major, pc.minors[b.Index()])
}

// MinorValue returns the raw minor counter of a data block — the state the
// MetaLeak-C mPreset step manipulates.
func (s *SC) MinorValue(b arch.BlockID) uint64 {
	return uint64(s.page(b.Page()).minors[b.Index()])
}

// Increment implements Scheme (Algorithm 1 for the SC scheme): the minor
// counter advances; when it would exceed its width the shared major counter
// is incremented, all minors reset, and the whole page (the counter-sharing
// group G_SC) must be re-encrypted.
func (s *SC) Increment(b arch.BlockID) (uint64, *Overflow) {
	pc := s.page(b.Page())
	pc.serialOK = false
	idx := b.Index()
	if uint64(pc.minors[idx]) < s.MinorMax() {
		pc.minors[idx]++
		return s.fused(pc.major, pc.minors[idx]), nil
	}
	// Overflow: record old values, bump major, reset minors.
	ov := &Overflow{GroupSize: arch.BlocksPerPage}
	oldMajor := pc.major
	pc.major++
	for i := 0; i < arch.BlocksPerPage; i++ {
		if i == idx {
			continue
		}
		old := s.fused(oldMajor, pc.minors[i])
		pc.minors[i] = 0
		ov.Reencrypt = append(ov.Reencrypt, Change{
			Block: b.Page().Block(i),
			Old:   old,
			New:   s.fused(pc.major, 0),
		})
	}
	pc.minors[idx] = 1
	return s.fused(pc.major, 1), ov
}

// CorruptCounter implements Scheme: the page's shared major counter or
// b's own minor counter takes a one-bit flip.
func (s *SC) CorruptCounter(b arch.BlockID, major bool) {
	pc := s.page(b.Page())
	pc.serialOK = false
	if major {
		pc.major ^= 1
		return
	}
	pc.minors[b.Index()] ^= 1
}

// BlockBytes implements Scheme: 8 bytes of major counter followed by 56
// bytes holding the 64 packed 7-bit minors (the Table I layout). Wider
// minors (ablation configs) fall back to byte packing of the low 8 bits.
func (s *SC) BlockBytes(cb arch.BlockID) [arch.BlockSize]byte {
	pc := s.page(s.PageOfCounterBlock(cb))
	if pc.serialOK {
		return pc.serial
	}
	pc.serial = [arch.BlockSize]byte{}
	out := &pc.serial
	binary.LittleEndian.PutUint64(out[0:8], pc.major)
	if s.cfg.MinorBits == 7 {
		bitOff := 0
		for i := 0; i < arch.BlocksPerPage; i++ {
			v := uint64(pc.minors[i]) & 0x7f
			byteIdx := 8 + bitOff/8
			sh := uint(bitOff % 8)
			out[byteIdx] |= byte(v << sh)
			if sh > 1 {
				out[byteIdx+1] |= byte(v >> (8 - sh))
			}
			bitOff += 7
		}
	} else {
		for i := 0; i < arch.BlocksPerPage && 8+i < arch.BlockSize; i++ {
			out[8+i] = byte(pc.minors[i])
		}
	}
	pc.serialOK = true
	return pc.serial
}

// ---------------------------------------------------------------------------
// Monolithic Counter (MoC): one counter per data block; overflow forces
// whole-memory re-encryption under a new key epoch.
// ---------------------------------------------------------------------------

// MoCConfig parameterizes the monolithic scheme.
type MoCConfig struct {
	Bits uint // counter width; 56 models SGX, small values for ablations
}

// MoC is the monolithic counter scheme.
type MoC struct {
	cfg      MoCConfig
	counters map[arch.BlockID]uint64
	epoch    uint64 // key epoch, bumped on overflow (whole-memory re-encrypt)
	// touched records every block whose seed was ever observed (read or
	// written). The controller materializes ciphertext for read-only blocks
	// at the observed seed, and the seed embeds the key epoch — so a
	// whole-memory re-key must re-encrypt ALL touched blocks, not just the
	// ever-written ones, or the next read of a read-only block fails its
	// MAC check as a phantom tamper detection.
	touched map[arch.BlockID]struct{}
}

// NewMoC builds a monolithic-counter scheme. Bits of 0 selects 56 (SGX).
func NewMoC(cfg MoCConfig) *MoC {
	if cfg.Bits == 0 {
		cfg.Bits = 56
	}
	return &MoC{
		cfg:      cfg,
		counters: make(map[arch.BlockID]uint64),
		touched:  make(map[arch.BlockID]struct{}),
	}
}

// Name implements Scheme.
func (m *MoC) Name() string { return "MoC" }

func (m *MoC) max() uint64 { return 1<<m.cfg.Bits - 1 }

const ctrsPerBlock = arch.BlockSize / 8

// CounterBlock implements Scheme: eight 64-bit counter slots per block.
func (m *MoC) CounterBlock(b arch.BlockID) arch.BlockID {
	return counterBase() + arch.BlockID(uint64(b)/ctrsPerBlock)
}

// DataBlocksOf implements Scheme.
func (m *MoC) DataBlocksOf(cb arch.BlockID) []arch.BlockID {
	base := arch.BlockID(uint64(cb-counterBase()) * ctrsPerBlock)
	out := make([]arch.BlockID, ctrsPerBlock)
	for i := range out {
		out[i] = base + arch.BlockID(i)
	}
	return out
}

// Value implements Scheme; the key epoch occupies the seed bits above the
// counter so that re-keying changes every block's effective seed. Every
// queried block joins the touched set: handing out a seed is what lets the
// controller materialize ciphertext under it, committing the block to the
// current epoch until a re-key re-encrypts it.
func (m *MoC) Value(b arch.BlockID) uint64 {
	m.touched[b] = struct{}{}
	return m.epoch<<m.cfg.Bits | m.counters[b]
}

// Increment implements Scheme. Overflow of any one counter requires
// re-encrypting the entire (touched) memory under a new key epoch —
// G_MoC is all of memory.
func (m *MoC) Increment(b arch.BlockID) (uint64, *Overflow) {
	m.touched[b] = struct{}{}
	if m.counters[b] < m.max() {
		m.counters[b]++
		return m.Value(b), nil
	}
	ov := &Overflow{}
	oldEpoch := m.epoch
	m.epoch++
	// Re-encrypt every touched block, written or merely read: read-only
	// blocks were materialized at the old epoch's seed and go stale under
	// the new key exactly like written ones. In block order: the overflow
	// burst becomes DRAM traffic, so its order must not depend on map
	// iteration.
	blocks := make([]arch.BlockID, 0, len(m.touched))
	for blk := range m.touched {
		if blk != b {
			blocks = append(blocks, blk)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		c := m.counters[blk]
		ov.Reencrypt = append(ov.Reencrypt, Change{
			Block: blk,
			Old:   oldEpoch<<m.cfg.Bits | c,
			New:   m.epoch<<m.cfg.Bits | c,
		})
	}
	ov.GroupSize = len(ov.Reencrypt) + 1
	m.counters[b] = 0
	return m.Value(b), ov
}

// CorruptCounter implements Scheme. MoC has no shared major counter, so
// the "major" flavour flips the counter's top stored bit instead — a
// high-order corruption of the same per-block counter word.
func (m *MoC) CorruptCounter(b arch.BlockID, major bool) {
	if major {
		m.counters[b] ^= 1 << (m.cfg.Bits - 1)
		return
	}
	m.counters[b] ^= 1
}

// BlockBytes implements Scheme. The slot loop mirrors DataBlocksOf
// without materializing the slice.
func (m *MoC) BlockBytes(cb arch.BlockID) [arch.BlockSize]byte {
	var out [arch.BlockSize]byte
	base := arch.BlockID(uint64(cb-counterBase()) * ctrsPerBlock)
	for i := 0; i < ctrsPerBlock; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], m.counters[base+arch.BlockID(i)])
	}
	return out
}

// ---------------------------------------------------------------------------
// Global Counter (GC): a single shared counter; each block stores the
// snapshot value that encrypted it. Overflow re-keys the whole memory.
// ---------------------------------------------------------------------------

// GCConfig parameterizes the global-counter scheme.
type GCConfig struct {
	Bits uint // global counter width
}

// GC is the global counter scheme.
type GC struct {
	cfg       GCConfig
	global    uint64
	epoch     uint64
	snapshots map[arch.BlockID]uint64 // value used at last encryption
	// touched records every block whose seed was ever observed — see the
	// MoC field of the same name: a whole-memory re-key must cover
	// read-only materialized blocks too.
	touched map[arch.BlockID]struct{}
}

// NewGC builds a global-counter scheme. Bits of 0 selects 32.
func NewGC(cfg GCConfig) *GC {
	if cfg.Bits == 0 {
		cfg.Bits = 32
	}
	return &GC{
		cfg:       cfg,
		snapshots: make(map[arch.BlockID]uint64),
		touched:   make(map[arch.BlockID]struct{}),
	}
}

// Name implements Scheme.
func (g *GC) Name() string { return "GC" }

func (g *GC) max() uint64 { return 1<<g.cfg.Bits - 1 }

// CounterBlock implements Scheme: snapshots are stored like MoC counters.
func (g *GC) CounterBlock(b arch.BlockID) arch.BlockID {
	return counterBase() + arch.BlockID(uint64(b)/ctrsPerBlock)
}

// DataBlocksOf implements Scheme.
func (g *GC) DataBlocksOf(cb arch.BlockID) []arch.BlockID {
	base := arch.BlockID(uint64(cb-counterBase()) * ctrsPerBlock)
	out := make([]arch.BlockID, ctrsPerBlock)
	for i := range out {
		out[i] = base + arch.BlockID(i)
	}
	return out
}

// Value implements Scheme. Like MoC.Value, the queried block joins the
// touched set so a later re-key re-encrypts it.
func (g *GC) Value(b arch.BlockID) uint64 {
	g.touched[b] = struct{}{}
	return g.epoch<<g.cfg.Bits | g.snapshots[b]
}

// Increment implements Scheme. The shared counter advances on every write;
// its overflow forces a key change and whole-memory re-encryption.
func (g *GC) Increment(b arch.BlockID) (uint64, *Overflow) {
	g.touched[b] = struct{}{}
	if g.global < g.max() {
		g.global++
		g.snapshots[b] = g.global
		return g.Value(b), nil
	}
	ov := &Overflow{}
	oldEpoch := g.epoch
	g.epoch++
	g.global = 0
	// Re-encrypt every touched block, read-only ones included (see
	// MoC.Increment), in block order: the burst's DRAM traffic order must
	// not depend on map iteration.
	blocks := make([]arch.BlockID, 0, len(g.touched))
	for blk := range g.touched {
		if blk != b {
			blocks = append(blocks, blk)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		snap := g.snapshots[blk]
		// Under the new key every snapshot re-encrypts; values keep their
		// snapshot but move to the new epoch.
		ov.Reencrypt = append(ov.Reencrypt, Change{
			Block: blk,
			Old:   oldEpoch<<g.cfg.Bits | snap,
			New:   g.epoch<<g.cfg.Bits | snap,
		})
	}
	ov.GroupSize = len(ov.Reencrypt) + 1
	g.global++
	g.snapshots[b] = g.global
	return g.Value(b), ov
}

// CorruptCounter implements Scheme: the stored state per block is the
// encryption-time snapshot, so that is what physical corruption hits —
// low bit, or top snapshot bit for the "major" flavour.
func (g *GC) CorruptCounter(b arch.BlockID, major bool) {
	if major {
		g.snapshots[b] ^= 1 << (g.cfg.Bits - 1)
		return
	}
	g.snapshots[b] ^= 1
}

// BlockBytes implements Scheme. The slot loop mirrors DataBlocksOf
// without materializing the slice.
func (g *GC) BlockBytes(cb arch.BlockID) [arch.BlockSize]byte {
	var out [arch.BlockSize]byte
	base := arch.BlockID(uint64(cb-counterBase()) * ctrsPerBlock)
	for i := 0; i < ctrsPerBlock; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], g.snapshots[base+arch.BlockID(i)])
	}
	return out
}
