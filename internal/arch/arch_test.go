package arch

import (
	"testing"
	"testing/quick"
)

func TestAddressGeometry(t *testing.T) {
	a := Addr(0x12345)
	if a.Block() != BlockID(0x12345>>6) {
		t.Fatal("block mapping")
	}
	if a.Page() != PageID(0x12345>>12) {
		t.Fatal("page mapping")
	}
	if a.Offset() != 0x12345&63 {
		t.Fatal("offset")
	}
}

func TestQuickBlockAddrRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		b := BlockID(raw)
		return b.Addr().Block() == b && b.Addr().Offset() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPageBlockRelations(t *testing.T) {
	f := func(raw uint32, i uint8) bool {
		p := PageID(raw)
		idx := int(i) % BlocksPerPage
		b := p.Block(idx)
		return b.Page() == p && b.Index() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionPredicates(t *testing.T) {
	if !Addr(100).IsData() || Addr(100).IsCounter() || Addr(100).IsTree() {
		t.Fatal("data region misclassified")
	}
	if !CounterBase.IsCounter() || CounterBase.IsData() || CounterBase.IsTree() {
		t.Fatal("counter region misclassified")
	}
	if !TreeBase.IsTree() || TreeBase.IsCounter() {
		t.Fatal("tree region misclassified")
	}
	if !CounterBase.Block().IsCounter() || !TreeBase.Block().IsTree() {
		t.Fatal("block predicates disagree with address predicates")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collide immediately")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks correlated")
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGStreams(t *testing.T) {
	// One-argument form stays bit-compatible with the historic seeding.
	if got, want := NewRNG(42).Uint64(), (&RNG{state: 42}).Uint64(); got != want {
		t.Fatalf("NewRNG(42) diverges from historic seeding: %d != %d", got, want)
	}
	// Streams are deterministic and distinct per index and per seed.
	if NewRNG(42, 1).Uint64() != NewRNG(42, 1).Uint64() {
		t.Fatal("stream derivation not deterministic")
	}
	seen := map[uint64]bool{NewRNG(42).Uint64(): true}
	for i := uint64(0); i < 64; i++ {
		v := NewRNG(42, i).Uint64()
		if seen[v] {
			t.Fatalf("stream %d collides with an earlier stream", i)
		}
		seen[v] = true
	}
	if NewRNG(42, 7).Uint64() == NewRNG(43, 7).Uint64() {
		t.Fatal("same stream under different seeds collides")
	}
	// Multi-level streams nest: (seed, a, b) differs from (seed, a) and
	// from (seed, b, a).
	if NewRNG(1, 2, 3).Uint64() == NewRNG(1, 2).Uint64() ||
		NewRNG(1, 2, 3).Uint64() == NewRNG(1, 3, 2).Uint64() {
		t.Fatal("nested streams collide")
	}
}
