package arch

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic component of the simulator (replacement
// noise, background traffic, DRAM refresh jitter) draws from a seeded RNG
// so that experiments are exactly reproducible.
//
// The zero value is a valid generator seeded with 0; use NewRNG to pick a
// distinct stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. Optional
// stream values derive statistically independent generators from one
// base seed — the seed-plumbing idiom of the sweep engine, where every
// trial needs its own stream keyed by (experiment seed, trial index)
// without correlated draws: NewRNG(seed) is bit-compatible with the
// historic one-argument form, and NewRNG(seed, i) differs from
// NewRNG(seed, j) for i != j.
func NewRNG(seed uint64, stream ...uint64) *RNG {
	r := &RNG{state: seed}
	for _, s := range stream {
		r.state = splitmix(r.state ^ splitmix(s))
	}
	return r
}

// splitmix is the SplitMix64 finalizer, used to fold stream keys into
// the state so that nearby (seed, stream) pairs land far apart.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("arch: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean with probability p of being true.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from this one, useful for giving
// each subsystem its own stream without correlated draws.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
