// Package arch defines the shared vocabulary of the MetaLeak simulator:
// physical addresses, cache blocks, pages, simulated cycle counts, and the
// fixed geometry constants (64-byte blocks, 4 KiB pages) that every other
// package builds on.
//
// The simulator models a 64-bit physical address space. Memory regions are
// sparse: nothing is allocated until touched, so the synthetic region bases
// below (data, encryption counters, integrity tree) can sit far apart
// without cost.
package arch

// Fixed geometry of the simulated machine. These match the configuration in
// Table I of the paper (64 B cache blocks, 4 KiB pages, 64 blocks/page).
const (
	BlockShift    = 6
	BlockSize     = 1 << BlockShift // bytes per cache block
	PageShift     = 12
	PageSize      = 1 << PageShift // bytes per page
	BlocksPerPage = PageSize / BlockSize
)

// Region bases. Software-visible data lives at low addresses; security
// metadata (encryption counter blocks and integrity tree node blocks) lives
// in dedicated high regions that are reachable only through the memory
// controller, never through program loads and stores.
const (
	DataBase    Addr = 0
	CounterBase Addr = 1 << 40
	TreeBase    Addr = 1 << 41
)

// Addr is a simulated physical byte address.
type Addr uint64

// Cycles counts simulated processor cycles. All latencies in the simulator
// are expressed in Cycles; wall-clock time is never consulted.
type Cycles uint64

// BlockID identifies a 64-byte cache block (Addr >> BlockShift).
type BlockID uint64

// PageID identifies a 4 KiB page (Addr >> PageShift).
type PageID uint64

// Block returns the cache block containing the address.
func (a Addr) Block() BlockID { return BlockID(a >> BlockShift) }

// Page returns the page containing the address.
func (a Addr) Page() PageID { return PageID(a >> PageShift) }

// Offset returns the byte offset of the address within its block.
func (a Addr) Offset() int { return int(a & (BlockSize - 1)) }

// Addr returns the base address of the block.
func (b BlockID) Addr() Addr { return Addr(b) << BlockShift }

// Page returns the page containing the block.
func (b BlockID) Page() PageID { return PageID(b >> (PageShift - BlockShift)) }

// Index returns the block's index within its page (0..63).
func (b BlockID) Index() int { return int(b & (BlocksPerPage - 1)) }

// Addr returns the base address of the page.
func (p PageID) Addr() Addr { return Addr(p) << PageShift }

// Block returns the i'th block of the page.
func (p PageID) Block(i int) BlockID {
	return BlockID(p)<<(PageShift-BlockShift) | BlockID(i&(BlocksPerPage-1))
}

// IsData reports whether the address lies in the software-visible data
// region (as opposed to the counter or tree metadata regions).
func (a Addr) IsData() bool { return a < CounterBase }

// IsCounter reports whether the address is an encryption counter block.
func (a Addr) IsCounter() bool { return a >= CounterBase && a < TreeBase }

// IsTree reports whether the address is an integrity tree node block.
func (a Addr) IsTree() bool { return a >= TreeBase }

// Block region helpers mirror the Addr ones.

// IsData reports whether the block lies in the data region.
func (b BlockID) IsData() bool { return b.Addr().IsData() }

// IsCounter reports whether the block is an encryption counter block.
func (b BlockID) IsCounter() bool { return b.Addr().IsCounter() }

// IsTree reports whether the block is an integrity tree node block.
func (b BlockID) IsTree() bool { return b.Addr().IsTree() }
